package core

import (
	"fmt"

	"uexc/internal/cpu"
	"uexc/internal/userrt"
)

// SetHardwareUTLBMod selects whether the machine implements the
// user-level TLB protection-update instruction in hardware; without it,
// UTLBMOD traps and the kernel emulates the opcode (§3.2.3's software
// variant).
func (m *Machine) SetHardwareUTLBMod(on bool) { m.K.CPU.HWUTLBMod = on }

// ProtMech names a mechanism for changing page protection from user
// level (ablation D).
type ProtMech int

const (
	ProtMechHardware ProtMech = iota // UTLBMOD in hardware (U bit)
	ProtMechEmulated                 // UTLBMOD emulated by the kernel on RI
	ProtMechSyscall                  // conventional mprotect
)

// String names the mechanism.
func (p ProtMech) String() string {
	switch p {
	case ProtMechHardware:
		return "utlbmod (hardware U bit)"
	case ProtMechEmulated:
		return "utlbmod (kernel-emulated opcode)"
	case ProtMechSyscall:
		return "mprotect system call"
	}
	return "unknown"
}

// protChangeProg toggles a page's protection 2n times via UTLBMOD.
func protChangeUTLBProg(n int) string {
	return fmt.Sprintf(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	li    a0, 8192
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0
	sw    zero, 0(s1)          # touch: allocate + TLB entry
	move  a0, s1               # grant the U bit
	li    a1, 1
	li    v0, SYS_setubit
	syscall
	nop
	lw    t1, 0(s1)            # re-establish the TLB entry (setubit flushed it)
	li    s0, %d
loop:
bench_fault:
	li    t1, 2                # read-only
	utlbmod s1, t1
	li    t1, 3                # read-write
	utlbmod s1, t1
bench_resume:
	addiu s0, s0, -1
	bnez  s0, loop
	nop
`+progTail, n)
}

// protChangeSyscallProg toggles a page's protection 2n times via
// mprotect.
func protChangeSyscallProg(n int) string {
	return fmt.Sprintf(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	li    a0, 8192
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0
	sw    zero, 0(s1)
	li    s0, %d
loop:
bench_fault:
	move  a0, s1
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect
	syscall
	nop
	move  a0, s1
	li    a1, 4096
	li    a2, 3
	li    v0, SYS_mprotect
	syscall
	nop
bench_resume:
	addiu s0, s0, -1
	bnez  s0, loop
	nop
`+progTail, n)
}

// MeasureProtChange returns the mean cost in cycles of one user-level
// page-protection change under the given mechanism (ablation D: the
// three ways §2.2/§3.2.3 discuss).
func MeasureProtChange(mech ProtMech, n int) (float64, error) {
	var prog string
	switch mech {
	case ProtMechHardware, ProtMechEmulated:
		prog = protChangeUTLBProg(n)
	case ProtMechSyscall:
		prog = protChangeSyscallProg(n)
	}
	m, err := NewMachine()
	if err != nil {
		return 0, err
	}
	if err := m.LoadProgram(prog); err != nil {
		return 0, err
	}
	if mech == ProtMechEmulated {
		m.SetHardwareUTLBMod(false)
	}
	var startC uint64
	var costs []uint64
	watches := map[uint32]func(*cpu.CPU){
		m.Sym("bench_fault"):  func(c *cpu.CPU) { startC = c.Cycles },
		m.Sym("bench_resume"): func(c *cpu.CPU) { costs = append(costs, c.Cycles-startC) },
	}
	if err := m.RunWithWatches(60_000_000, watches); err != nil {
		return 0, err
	}
	if len(costs) == 0 {
		return 0, fmt.Errorf("core: protection-change benchmark recorded nothing")
	}
	if mech == ProtMechEmulated && m.K.Stats.UTLBEmuls == 0 {
		return 0, fmt.Errorf("core: emulated mechanism took no emulations")
	}
	return mean(costs) / 2, nil // two changes per iteration
}

// vectoredProg is the simple-exception benchmark with the vectored
// low-level handler (per-exception dispatch table) instead of the
// single-handler path.
func vectoredProg(n int) string {
	return fmt.Sprintf(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, __skip_handler
	la    t1, __fexc_vtable
	sw    t0, 9*4(t1)          # vtable[Bp]
	la    a0, __fexc_vec
	li    a1, 1 << 9
	jal   __uexc_enable
	nop
	break
	li    s0, %d
loop:
bench_fault:
	break
bench_resume:
	addiu s0, s0, -1
	bnez  s0, loop
	nop
`+progTail, n)
}

// MeasureVectoredDispatch measures the simple-exception round trip with
// the vector-table low-level handler (the §2.2 design point).
func MeasureVectoredDispatch(n int) (Timing, error) {
	t, _, err := runTimedLoop(timedLoopSpec{
		prog:         vectoredProg(n),
		handlerEntry: userrt.SymSkipHandler,
		handlerExit:  userrt.SymFexcVecRet,
		codeMask:     1 << 9,
	})
	return t, err
}
