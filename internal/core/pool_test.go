package core

import (
	"fmt"
	"sync"
	"testing"
)

// runDigest executes a program on m and digests every observable the
// campaign fingerprints: outcome error text, console, cycle and
// instruction counts, and kernel stats.
func runDigest(t *testing.T, m *Machine, prog string) string {
	t.Helper()
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	runErr := m.Run(10_000_000)
	errText := ""
	if runErr != nil {
		errText = runErr.Error()
	}
	return fmt.Sprintf("err=%q console=%q stats=%+v cycles=%d insts=%d",
		errText, m.K.Console(), m.K.Stats, m.CPU().Cycles, m.CPU().Insts)
}

// TestResetMatchesFreshMachine: a machine reset after a run must be
// observationally identical to a freshly booted one — the contract the
// campaign's machine pool depends on. The first run deliberately takes
// exceptions and exercises the fast path so real kernel state (page
// tables, TLB entries, stats, u-area) is left behind for Reset to
// scrub.
func TestResetMatchesFreshMachine(t *testing.T) {
	dirty, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	_ = runDigest(t, dirty, simpleFastProg(20)) // leave residue

	if err := dirty.Reset(); err != nil {
		t.Fatal(err)
	}
	if dirty.Prog != nil {
		t.Error("Reset kept the loaded program")
	}
	if c := dirty.CPU(); c.Cycles != 0 || c.Insts != 0 || c.TeraMode {
		t.Errorf("Reset left CPU state: cycles=%d insts=%d tera=%v", c.Cycles, c.Insts, c.TeraMode)
	}

	fresh, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	for i, prog := range []string{simpleFastProg(20), simpleUltrixProg(20)} {
		got := runDigest(t, dirty, prog)
		want := runDigest(t, fresh, prog)
		if got != want {
			t.Errorf("program %d: reset machine diverged from fresh\n reset: %s\n fresh: %s", i, got, want)
		}
		if err := dirty.Reset(); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Reset(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResetClearsHardwareDelivery: mode configuration must not leak
// from one pooled run into the next.
func TestResetClearsHardwareDelivery(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	m.EnableHardwareDelivery(1 << 1)
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if m.CPU().TeraMode || m.CPU().UserVector != 0 {
		t.Error("Reset kept hardware-delivery configuration")
	}
}

// TestMachinePoolRecycles: Get/Put round-trips reuse the machine and
// hand it back in the fresh-boot state.
func TestMachinePoolRecycles(t *testing.T) {
	var pool MachinePool
	m1, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	first := runDigest(t, m1, simpleFastProg(10))
	pool.Put(m1)

	m2, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m1 {
		t.Fatal("pool booted a new machine while one was free")
	}
	if second := runDigest(t, m2, simpleFastProg(10)); second != first {
		t.Errorf("recycled run diverged:\n first: %s\nsecond: %s", first, second)
	}
	pool.Put(m2)

	// Two concurrent checkouts force a second boot.
	a, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("pool handed out the same machine twice")
	}
}

// TestAssembleUserCache: the same source yields the same shared
// program object, and distinct sources stay distinct.
func TestAssembleUserCache(t *testing.T) {
	p1, err := assembleUser(simpleFastProg(10))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := assembleUser(simpleFastProg(10))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("identical source assembled twice (cache miss)")
	}
	p3, err := assembleUser(simpleFastProg(11))
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("distinct sources shared one cache entry")
	}
}

// TestMachinePoolConcurrent hammers Get/Put from many goroutines (run
// under -race by make check): the pool must never hand the same
// machine to two holders at once, every recycled machine must pass the
// kernel's invariant SelfCheck after Reset, and the traffic counters
// must balance.
func TestMachinePoolConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("boots machines from many goroutines")
	}
	var pool MachinePool
	const (
		goroutines = 8
		rounds     = 25
	)

	var (
		mu    sync.Mutex
		inUse = map[*Machine]bool{}
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				m, err := pool.Get()
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: Get: %w", g, r, err)
					return
				}
				mu.Lock()
				if inUse[m] {
					mu.Unlock()
					errs <- fmt.Errorf("goroutine %d round %d: machine handed out twice", g, r)
					return
				}
				inUse[m] = true
				mu.Unlock()

				// A recycled machine must be in the NewMachine state: the
				// kernel invariants hold before any program is loaded.
				if err := m.K.SelfCheck(); err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: recycled machine fails SelfCheck: %w", g, r, err)
					return
				}
				// Dirty some rounds so Reset has real residue to scrub.
				if r%3 == 0 {
					if err := m.LoadProgram(simpleFastProg(3)); err != nil {
						errs <- fmt.Errorf("goroutine %d round %d: load: %w", g, r, err)
						return
					}
					if err := m.Run(1_000_000); err != nil {
						errs <- fmt.Errorf("goroutine %d round %d: run: %w", g, r, err)
						return
					}
				}

				mu.Lock()
				delete(inUse, m)
				mu.Unlock()
				pool.Put(m)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := pool.Stats()
	if st.Gets != goroutines*rounds {
		t.Errorf("Gets = %d, want %d", st.Gets, goroutines*rounds)
	}
	if st.Reuses+st.Boots != st.Gets {
		t.Errorf("Reuses (%d) + Boots (%d) != Gets (%d)", st.Reuses, st.Boots, st.Gets)
	}
	if st.Puts != st.Gets {
		t.Errorf("Puts = %d, want %d (every Get was returned)", st.Puts, st.Gets)
	}
	if st.Boots > goroutines {
		t.Errorf("Boots = %d, want <= %d (at most one boot per concurrent holder)", st.Boots, goroutines)
	}
}

// TestMachinePoolHarvest: Put invokes the Harvest hook with the
// machine's post-run counters still intact (Reset happens on the next
// Get, not on Put).
func TestMachinePoolHarvest(t *testing.T) {
	var pool MachinePool
	var harvested []uint64
	pool.Harvest = func(m *Machine) { harvested = append(harvested, m.CPU().Insts) }

	m, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	_ = runDigest(t, m, simpleFastProg(5))
	insts := m.CPU().Insts
	if insts == 0 {
		t.Fatal("run retired no instructions")
	}
	pool.Put(m)

	if len(harvested) != 1 || harvested[0] != insts {
		t.Fatalf("harvested = %v, want [%d]", harvested, insts)
	}
	st := pool.Stats()
	if st.Gets != 1 || st.Boots != 1 || st.Puts != 1 || st.Reuses != 0 {
		t.Errorf("stats = %+v, want one boot, one put", st)
	}
}
