package core

import (
	"fmt"
	"testing"
)

// runDigest executes a program on m and digests every observable the
// campaign fingerprints: outcome error text, console, cycle and
// instruction counts, and kernel stats.
func runDigest(t *testing.T, m *Machine, prog string) string {
	t.Helper()
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	runErr := m.Run(10_000_000)
	errText := ""
	if runErr != nil {
		errText = runErr.Error()
	}
	return fmt.Sprintf("err=%q console=%q stats=%+v cycles=%d insts=%d",
		errText, m.K.Console(), m.K.Stats, m.CPU().Cycles, m.CPU().Insts)
}

// TestResetMatchesFreshMachine: a machine reset after a run must be
// observationally identical to a freshly booted one — the contract the
// campaign's machine pool depends on. The first run deliberately takes
// exceptions and exercises the fast path so real kernel state (page
// tables, TLB entries, stats, u-area) is left behind for Reset to
// scrub.
func TestResetMatchesFreshMachine(t *testing.T) {
	dirty, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	_ = runDigest(t, dirty, simpleFastProg(20)) // leave residue

	if err := dirty.Reset(); err != nil {
		t.Fatal(err)
	}
	if dirty.Prog != nil {
		t.Error("Reset kept the loaded program")
	}
	if c := dirty.CPU(); c.Cycles != 0 || c.Insts != 0 || c.TeraMode {
		t.Errorf("Reset left CPU state: cycles=%d insts=%d tera=%v", c.Cycles, c.Insts, c.TeraMode)
	}

	fresh, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	for i, prog := range []string{simpleFastProg(20), simpleUltrixProg(20)} {
		got := runDigest(t, dirty, prog)
		want := runDigest(t, fresh, prog)
		if got != want {
			t.Errorf("program %d: reset machine diverged from fresh\n reset: %s\n fresh: %s", i, got, want)
		}
		if err := dirty.Reset(); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Reset(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResetClearsHardwareDelivery: mode configuration must not leak
// from one pooled run into the next.
func TestResetClearsHardwareDelivery(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	m.EnableHardwareDelivery(1 << 1)
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if m.CPU().TeraMode || m.CPU().UserVector != 0 {
		t.Error("Reset kept hardware-delivery configuration")
	}
}

// TestMachinePoolRecycles: Get/Put round-trips reuse the machine and
// hand it back in the fresh-boot state.
func TestMachinePoolRecycles(t *testing.T) {
	var pool MachinePool
	m1, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	first := runDigest(t, m1, simpleFastProg(10))
	pool.Put(m1)

	m2, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m1 {
		t.Fatal("pool booted a new machine while one was free")
	}
	if second := runDigest(t, m2, simpleFastProg(10)); second != first {
		t.Errorf("recycled run diverged:\n first: %s\nsecond: %s", first, second)
	}
	pool.Put(m2)

	// Two concurrent checkouts force a second boot.
	a, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("pool handed out the same machine twice")
	}
}

// TestAssembleUserCache: the same source yields the same shared
// program object, and distinct sources stay distinct.
func TestAssembleUserCache(t *testing.T) {
	p1, err := assembleUser(simpleFastProg(10))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := assembleUser(simpleFastProg(10))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("identical source assembled twice (cache miss)")
	}
	p3, err := assembleUser(simpleFastProg(11))
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("distinct sources shared one cache entry")
	}
}
