package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestShippedExamplePrograms runs every .s program under
// examples/programs (the uexc-run samples) and checks their output.
func TestShippedExamplePrograms(t *testing.T) {
	cases := []struct {
		file string
		want string
	}{
		{"hello.s", "hello, world!\n"},
		{"fib.s", "1\n1\n2\n3\n5\n8\n13\n21\n34\n55\n89\n144\n"},
		{"trapdemo.s", "handled 9 traps at user level\n"},
	}
	dir := filepath.Join("..", "..", "examples", "programs")
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, c.file))
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMachine()
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadProgram(string(src)); err != nil {
				t.Fatal(err)
			}
			if err := m.Run(50_000_000); err != nil {
				t.Fatal(err)
			}
			got := m.K.Console()
			if !strings.HasPrefix(got, c.want) && got != c.want {
				t.Errorf("console = %q, want %q", got, c.want)
			}
		})
	}
}
