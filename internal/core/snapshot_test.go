package core

import (
	"testing"

	"uexc/internal/cpu"
)

// TestForkMatchesSource: a machine forked from a post-boot snapshot
// must be observationally identical to the machine the snapshot was
// taken from — the fork-from-boot contract the warm serving pool
// depends on (DESIGN.md §16).
func TestForkMatchesSource(t *testing.T) {
	src, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	snap := src.Snapshot()
	if snap.Pages() == 0 {
		t.Fatal("post-boot snapshot captured no pages")
	}

	fork, err := Fork(snap)
	if err != nil {
		t.Fatal(err)
	}
	for i, prog := range []string{simpleFastProg(20), simpleUltrixProg(20)} {
		got := runDigest(t, fork, prog)
		want := runDigest(t, src, prog)
		if got != want {
			t.Errorf("program %d: fork diverged from source\n fork: %s\n  src: %s", i, got, want)
		}
		if _, err := fork.Restore(snap); err != nil {
			t.Fatal(err)
		}
		if _, err := src.Restore(snap); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestoreRewindsRun: restoring a snapshot after a full program run
// rewinds the machine to the capture point — the re-run is
// byte-identical, and the restore copies only the pages the run
// dirtied, not the whole address space.
func TestRestoreRewindsRun(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()

	first := runDigest(t, m, simpleUltrixProg(15))
	touched := m.K.Mem.TouchedPages()
	dirty, err := m.Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if dirty == 0 {
		t.Fatal("post-run restore copied no pages")
	}
	// O(dirty pages): the restore copies at most what the run touched,
	// never the whole address space.
	if dirty > touched {
		t.Errorf("restore copied %d pages, but only %d were ever touched", dirty, touched)
	}
	if second := runDigest(t, m, simpleUltrixProg(15)); second != first {
		t.Errorf("restored re-run diverged:\n first: %s\nsecond: %s", first, second)
	}

	// An idle restore right after a restore+no-run touches nothing.
	if _, err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	dirty, err = m.Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if dirty != 0 {
		t.Errorf("idle restore copied %d pages, want 0", dirty)
	}
}

// TestForkIndependence: two forks of one snapshot share nothing — a
// run on one cannot perturb the other or the snapshot itself.
func TestForkIndependence(t *testing.T) {
	src, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	snap := src.Snapshot()

	f1, err := Fork(snap)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fork(snap)
	if err != nil {
		t.Fatal(err)
	}
	first := runDigest(t, f1, simpleFastProg(12))
	// f1's run dirtied its pages; f2 must still see pristine snapshot
	// content.
	if second := runDigest(t, f2, simpleFastProg(12)); second != first {
		t.Errorf("fork siblings diverged:\n f1: %s\n f2: %s", first, second)
	}
}

// TestPoolWarmHarvestTotals: with warm boot enabled, each fork-run-put
// cycle harvests exactly that run's counters — the warm snapshot must
// not bake counter residue into every restored machine, or /metrics
// totals would double-count. (EnableWarmBoot's zero-counter assertion
// references this test.)
func TestPoolWarmHarvestTotals(t *testing.T) {
	var pool MachinePool
	var harvested []uint64
	pool.Harvest = func(m *Machine) { harvested = append(harvested, m.CPU().Insts) }
	if err := pool.EnableWarmBoot(); err != nil {
		t.Fatal(err)
	}
	if !pool.WarmBoot() {
		t.Fatal("warm snapshot not installed")
	}

	var perRun []uint64
	for i := 0; i < 2; i++ {
		m, err := pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		if got := m.CPU().Insts; got != 0 {
			t.Fatalf("cycle %d: warm checkout carries %d retired insts", i, got)
		}
		_ = runDigest(t, m, simpleFastProg(5+i))
		perRun = append(perRun, m.CPU().Insts)
		pool.Put(m)
	}

	if len(harvested) != len(perRun) {
		t.Fatalf("harvested %d runs, want %d", len(harvested), len(perRun))
	}
	var got, want uint64
	for i := range perRun {
		if perRun[i] == 0 {
			t.Fatalf("run %d retired no instructions", i)
		}
		if harvested[i] != perRun[i] {
			t.Errorf("run %d harvested %d insts, want %d (double count?)", i, harvested[i], perRun[i])
		}
		got += harvested[i]
		want += perRun[i]
	}
	if got != want {
		t.Errorf("harvest total %d, want %d", got, want)
	}

	st := pool.Stats()
	if st.Gets != 2 || st.Restores != 2 || st.Boots != 0 || st.Forks != 0 {
		t.Errorf("stats = %+v, want 2 gets served by warm restore of the boot machine", st)
	}

	// Drain the pool so the next Get must fork onto fresh hardware.
	m1, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("pool handed out the same machine twice")
	}
	if st := pool.Stats(); st.Forks != 1 {
		t.Errorf("empty-pool warm checkout did not fork (stats=%+v)", st)
	}
	if got := m2.CPU().Insts; got != 0 {
		t.Errorf("forked checkout carries %d retired insts", got)
	}
}

// TestPoolWarmMatchesCold: runs served by a warm pool (restore/fork
// path) are byte-identical to runs served by a cold pool (reset/boot
// path) — the warm boot optimisation must be invisible to every
// campaign digest.
func TestPoolWarmMatchesCold(t *testing.T) {
	prev := cpu.DefaultEngine
	defer func() { cpu.DefaultEngine = prev }()
	for _, e := range []cpu.Engine{cpu.EngineJIT, cpu.EngineFast, cpu.EngineInterp} {
		cpu.DefaultEngine = e
		var warm, cold MachinePool
		if err := warm.EnableWarmBoot(); err != nil {
			t.Fatal(err)
		}

		// smcProg leads: the very first instructions a restored machine
		// executes patch code in place, so a stale decode surviving the
		// snapshot restore's generation advance would diverge here.
		progs := []string{smcProg, simpleFastProg(10), simpleUltrixProg(10), smcProg}
		for i, prog := range progs {
			wm, err := warm.Get()
			if err != nil {
				t.Fatal(err)
			}
			cm, err := cold.Get()
			if err != nil {
				t.Fatal(err)
			}
			w := runDigest(t, wm, prog)
			c := runDigest(t, cm, prog)
			warm.Put(wm)
			cold.Put(cm)
			if w != c {
				t.Errorf("engine %d program %d: warm pool diverged from cold\nwarm: %s\ncold: %s", e, i, w, c)
			}
		}
	}
}

// smcProg copies a tiny thunk into a buffer, calls it, patches its
// first instruction in place, and calls it again — the second call
// must observe the patch. Run as a restored machine's first program it
// pins the §16 rule that a snapshot restore leaves no stale decodes
// behind: a wrong second return value trips the unhandled break.
const smcProg = `
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, smc_src
	la    t1, smc_buf
	lw    t2, 0(t0)
	sw    t2, 0(t1)
	lw    t2, 4(t0)
	sw    t2, 4(t1)
	lw    t2, 8(t0)
	sw    t2, 8(t1)
	jalr  t1                  # first call: v1 = 7
	nop
	move  s0, v1
	lw    t2, 12(t0)
	sw    t2, 0(t1)           # patch in place: 7 -> 1234
	jalr  t1                  # must observe the patch
	nop
	addu  s0, s0, v1
	li    t3, 1241            # 7 + 1234
	beq   s0, t3, smc_done
	nop
	break                     # diverged: die loudly (unhandled)
smc_done:
` + progTail + `
smc_src:
	addiu v1, zero, 7
	jr    ra
	nop
	addiu v1, zero, 1234
	.align 8
smc_buf:
	.space 16
`
