package core

import (
	"errors"
	"testing"

	"uexc/internal/cpu"
)

// TestWatchdogDetectsLivelock: a pure state cycle — no stores, no new
// code, no register drift — must be reported as a typed LivelockError
// well before the instruction budget, not ground out as ErrBudget.
func TestWatchdogDetectsLivelock(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(`
main:
spin:
	b     spin
	nop
`); err != nil {
		t.Fatal(err)
	}
	err = m.Run(5_000_000)
	var ll *cpu.LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("err = %v, want *LivelockError", err)
	}
	if !errors.Is(err, cpu.ErrLivelock) {
		t.Errorf("errors.Is(err, ErrLivelock) = false")
	}
	if ll.Insts >= 5_000_000 {
		t.Errorf("detected only at the budget (insts=%d); watchdog must fire early", ll.Insts)
	}
}

// TestWatchdogIgnoresProgressingLoop: a loop that still changes
// register state every iteration is progress, not livelock — it must
// run to the budget and be typed as a BudgetError.
func TestWatchdogIgnoresProgressingLoop(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(`
main:
	li    t0, 0
count:
	addiu t0, t0, 1
	b     count
	nop
`); err != nil {
		t.Fatal(err)
	}
	err = m.Run(400_000)
	var be *cpu.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if errors.Is(err, cpu.ErrLivelock) {
		t.Error("progressing loop misclassified as livelock")
	}
}

// TestWatchdogIgnoresStoringLoop: same, but progress is visible only
// through memory traffic (registers recur each iteration).
func TestWatchdogIgnoresStoringLoop(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(`
main:
	la    t1, cell
store_loop:
	lw    t0, 0(t1)
	addiu t0, t0, 1
	sw    t0, 0(t1)
	b     store_loop
	nop
	.align 4
cell:
	.word 0
`); err != nil {
		t.Fatal(err)
	}
	err = m.Run(400_000)
	if errors.Is(err, cpu.ErrLivelock) {
		t.Errorf("storing loop misclassified as livelock: %v", err)
	}
	if !errors.Is(err, cpu.ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}
