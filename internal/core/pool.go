package core

import "sync"

// MachinePool recycles booted Machines across simulator runs. Booting
// is cheap thanks to the cached kernel image, but every boot still
// rebuilds the address space (memory pages, page tables, TLB) from
// nothing; a pooled machine keeps those allocations and is scrubbed
// back to the NewMachine state by Reset on reuse. The pool is safe for
// concurrent use by the parallel campaign workers; it holds at most as
// many machines as were ever simultaneously checked out, i.e. one per
// worker in steady state.
//
// Determinism contract: Get returns a machine whose observable state
// is identical to a fresh NewMachine, so runs are byte-identical
// whether their machine was pooled or fresh, and regardless of which
// worker previously used it. Callers that suspect a machine's
// integrity (e.g. after recovering a panic mid-run) should drop it on
// the floor instead of calling Put.
type MachinePool struct {
	mu   sync.Mutex
	free []*Machine
}

// Get returns a machine in the NewMachine state: a pooled one reset in
// place, or a freshly booted one when the pool is empty.
func (p *MachinePool) Get() (*Machine, error) {
	p.mu.Lock()
	var m *Machine
	if n := len(p.free); n > 0 {
		m = p.free[n-1]
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if m == nil {
		return NewMachine()
	}
	if err := m.Reset(); err != nil {
		return nil, err
	}
	return m, nil
}

// Put returns a machine to the pool for reuse. The machine is reset on
// the next Get, so Put itself is cheap and may be called with the
// machine in any post-run state.
func (p *MachinePool) Put(m *Machine) {
	if m == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, m)
	p.mu.Unlock()
}
