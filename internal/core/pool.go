package core

import "sync"

// MachinePool recycles booted Machines across simulator runs. Booting
// is cheap thanks to the cached kernel image, but every boot still
// rebuilds the address space (memory pages, page tables, TLB) from
// nothing; a pooled machine keeps those allocations and is scrubbed
// back to the NewMachine state by Reset on reuse. The pool is safe for
// concurrent use by the parallel campaign workers; it holds at most as
// many machines as were ever simultaneously checked out, i.e. one per
// worker in steady state.
//
// Determinism contract: Get returns a machine whose observable state
// is identical to a fresh NewMachine, so runs are byte-identical
// whether their machine was pooled or fresh, and regardless of which
// worker previously used it. Callers that suspect a machine's
// integrity (e.g. after recovering a panic mid-run) should drop it on
// the floor instead of calling Put.
type MachinePool struct {
	// Harvest, when non-nil, is invoked by Put with the machine still in
	// its post-run state (counters intact, reset not yet performed), on
	// the caller's goroutine and outside the pool lock. The serving
	// layer uses it to accumulate simulator counters — deliveries, TLB
	// hits/misses, fast-path hits — across pooled runs before Reset
	// wipes them. It must not retain the machine.
	Harvest func(*Machine)

	mu    sync.Mutex
	free  []*Machine
	stats PoolStats
}

// PoolStats counts pool traffic; the reuse ratio Reuses/Gets is the
// pool hit rate the serving layer exports.
type PoolStats struct {
	Gets   uint64 // checkouts (Reuses + Boots)
	Reuses uint64 // checkouts served by recycling a pooled machine
	Boots  uint64 // checkouts that had to boot fresh hardware
	Puts   uint64 // machines returned for reuse
}

// Stats returns a snapshot of the pool counters.
func (p *MachinePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Get returns a machine in the NewMachine state: a pooled one reset in
// place, or a freshly booted one when the pool is empty.
func (p *MachinePool) Get() (*Machine, error) {
	p.mu.Lock()
	var m *Machine
	p.stats.Gets++
	if n := len(p.free); n > 0 {
		m = p.free[n-1]
		p.free = p.free[:n-1]
		p.stats.Reuses++
	} else {
		p.stats.Boots++
	}
	p.mu.Unlock()
	if m == nil {
		return NewMachine()
	}
	if err := m.Reset(); err != nil {
		return nil, err
	}
	return m, nil
}

// Put returns a machine to the pool for reuse. The machine is reset on
// the next Get, so Put itself is cheap and may be called with the
// machine in any post-run state.
func (p *MachinePool) Put(m *Machine) {
	if m == nil {
		return
	}
	if p.Harvest != nil {
		p.Harvest(m)
	}
	p.mu.Lock()
	p.free = append(p.free, m)
	p.stats.Puts++
	p.mu.Unlock()
}
