package core

import (
	"fmt"
	"sync"

	"uexc/internal/kernel"
)

// MachinePool recycles booted Machines across simulator runs. Booting
// is cheap thanks to the cached kernel image, but every boot still
// rebuilds the address space (memory pages, page tables, TLB) from
// nothing; a pooled machine keeps those allocations and is scrubbed
// back to the NewMachine state by Reset on reuse. The pool is safe for
// concurrent use by the parallel campaign workers; it holds at most as
// many machines as were ever simultaneously checked out, i.e. one per
// worker in steady state.
//
// Determinism contract: Get returns a machine whose observable state
// is identical to a fresh NewMachine, so runs are byte-identical
// whether their machine was pooled or fresh, and regardless of which
// worker previously used it. Callers that suspect a machine's
// integrity (e.g. after recovering a panic mid-run) should drop it on
// the floor instead of calling Put.
type MachinePool struct {
	// Harvest, when non-nil, is invoked by Put with the machine still in
	// its post-run state (counters intact, reset not yet performed), on
	// the caller's goroutine and outside the pool lock. The serving
	// layer uses it to accumulate simulator counters — deliveries, TLB
	// hits/misses, fast-path hits — across pooled runs before Reset
	// wipes them. It must not retain the machine.
	Harvest func(*Machine)

	mu    sync.Mutex
	free  []*Machine
	warm  *Snapshot
	stats PoolStats
}

// PoolStats counts pool traffic; the reuse ratio Reuses/Gets is the
// pool hit rate the serving layer exports.
type PoolStats struct {
	Gets     uint64 // checkouts (Reuses + Boots + Forks)
	Reuses   uint64 // checkouts served by recycling a pooled machine (reset path)
	Boots    uint64 // checkouts that had to boot fresh hardware
	Puts     uint64 // machines returned for reuse
	Forks    uint64 // checkouts served by forking the warm snapshot onto fresh hardware
	Restores uint64 // pooled checkouts served by restoring the warm snapshot in place
}

// Stats returns a snapshot of the pool counters.
func (p *MachinePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// EnableWarmBoot captures a warm post-boot snapshot that subsequent
// Gets serve from: pooled machines restore it in place (O(dirty pages)
// instead of a full scrub-and-reload Reset) and empty-pool checkouts
// fork it onto fresh hardware instead of booting. The snapshot is
// taken from a machine this call boots itself, and is verified to
// carry zero simulator counters — a warm image with baked-in counts
// would be re-harvested into /metrics totals on every fork-run-put
// cycle (see TestPoolWarmHarvestTotals).
func (p *MachinePool) EnableWarmBoot() error {
	m, err := NewMachine()
	if err != nil {
		return err
	}
	c := m.K.CPU
	if c.Insts != 0 || c.Cycles != 0 || c.TLB.Hits != 0 || c.TLB.Misses != 0 ||
		c.FastHits != 0 || (m.K.Stats != kernel.Stats{}) {
		return fmt.Errorf("core: post-boot machine has nonzero counters; refusing warm snapshot")
	}
	snap := m.Snapshot()
	p.mu.Lock()
	p.warm = snap
	p.free = append(p.free, m) // the boot machine itself is reusable
	p.mu.Unlock()
	return nil
}

// WarmBoot reports whether a warm snapshot is installed.
func (p *MachinePool) WarmBoot() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.warm != nil
}

// Get returns a machine in the NewMachine state: a pooled one restored
// from the warm snapshot (or reset in place when warm boot is off), or
// a forked/freshly booted one when the pool is empty.
func (p *MachinePool) Get() (*Machine, error) {
	p.mu.Lock()
	var m *Machine
	warm := p.warm
	p.stats.Gets++
	if n := len(p.free); n > 0 {
		m = p.free[n-1]
		p.free = p.free[:n-1]
		if warm != nil {
			p.stats.Restores++
		} else {
			p.stats.Reuses++
		}
	} else if warm != nil {
		p.stats.Forks++
	} else {
		p.stats.Boots++
	}
	p.mu.Unlock()
	if m == nil {
		if warm != nil {
			return Fork(warm)
		}
		return NewMachine()
	}
	if warm != nil {
		if _, err := m.Restore(warm); err != nil {
			return nil, err
		}
		return m, nil
	}
	if err := m.Reset(); err != nil {
		return nil, err
	}
	return m, nil
}

// Put returns a machine to the pool for reuse. The machine is reset on
// the next Get, so Put itself is cheap and may be called with the
// machine in any post-run state.
func (p *MachinePool) Put(m *Machine) {
	if m == nil {
		return
	}
	if p.Harvest != nil {
		p.Harvest(m)
	}
	p.mu.Lock()
	p.free = append(p.free, m)
	p.stats.Puts++
	p.mu.Unlock()
}
