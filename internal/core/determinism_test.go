package core

import "testing"

// TestMachineIsDeterministic: the documentation promises deterministic
// measurements — two fresh machines running the same program must agree
// cycle for cycle.
func TestMachineIsDeterministic(t *testing.T) {
	run := func() (uint64, uint64, string) {
		m, err := NewMachine()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadProgram(simpleFastProg(20)); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		return m.CPU().Cycles, m.CPU().Insts, m.K.Console()
	}
	c1, i1, o1 := run()
	c2, i2, o2 := run()
	if c1 != c2 || i1 != i2 || o1 != o2 {
		t.Errorf("runs diverged: cycles %d/%d insts %d/%d", c1, c2, i1, i2)
	}
}

// TestMeasurementsAreDeterministic: the microbenchmark harness itself
// must return identical numbers across invocations.
func TestMeasurementsAreDeterministic(t *testing.T) {
	a, err := MeasureSimpleException(ModeFast, 15)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureSimpleException(ModeFast, 15)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("measurements diverged: %+v vs %+v", a, b)
	}
}
