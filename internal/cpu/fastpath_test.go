package cpu

import (
	"errors"
	"fmt"
	"testing"

	"uexc/internal/arch"
	"uexc/internal/asm"
	"uexc/internal/mem"
	"uexc/internal/tlb"
)

// tortureSrc is an endless kuseg loop that streams loads and stores
// over two data pages through counted TLB translations, with a kseg0
// handler that folds every exception into s6/s7 and skips the faulting
// instruction. The Go side mutates the TLB and the code page between
// run chunks; any fault the mutations provoke is part of the expected
// (and compared) architectural history.
const tortureSrc = `
	.org 0x80000080
	mfc0 k0, c0_cause
	addu s7, s7, k0       # exception log digest
	addiu s6, s6, 1       # exception count
	mfc0 k0, c0_epc
	addiu k0, k0, 4
	jr   k0
	rfe

	.org 0x4000
start:
	li   s1, 0x10000
loop:
	lw   t0, 0(s1)
smc:	addu s0, s0, t0       # Go side toggles rt between t0 and t1
	sw   s0, 8(s1)
	lw   t1, 0x1000(s1)
	addu s0, s0, t1
	sw   s0, 0x1008(s1)
	addiu s1, s1, 16
	andi t2, s1, 0xfff
	bnez t2, loop
	nop
	li   s1, 0x10000
	b    loop
	nop
`

// tortureMachine is one lockstep participant.
type tortureMachine struct {
	c     *CPU
	m     *mem.Memory
	tl    *tlb.TLB
	smcPA uint32 // physical address of the smc: instruction
}

func newTortureMachine(t *testing.T, noFast bool) *tortureMachine {
	t.Helper()
	m := mem.New(1 << 22)
	tl := &tlb.TLB{}
	c := New(m, tl)
	c.NoFastPath = noFast

	p, err := asm.Assemble(tortureSrc, arch.KSeg0Base)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	for _, ch := range p.Chunks {
		pa := ch.Addr
		if ch.Addr >= arch.KSeg0Base {
			pa = arch.KSegPhys(ch.Addr)
		}
		if err := m.Write(pa, ch.Data); err != nil {
			t.Fatalf("load %#x: %v", ch.Addr, err)
		}
	}

	// Code page: wired slot 0, global and writable (SMC), identity-
	// mapped — mutations below never touch wired slots, so fetches
	// always translate and the handler's return never livelocks.
	tl.WriteIndexed(0, tlb.Entry{Hi: tlb.MakeHi(4, 0), Lo: tlb.MakeLo(4, tlb.LoV|tlb.LoD|tlb.LoG)})
	// Data pages vpn 16/17 for ASID 0 and, at different frames, ASID 1.
	tl.WriteIndexed(8, tlb.Entry{Hi: tlb.MakeHi(16, 0), Lo: tlb.MakeLo(16, tlb.LoV|tlb.LoD)})
	tl.WriteIndexed(9, tlb.Entry{Hi: tlb.MakeHi(17, 0), Lo: tlb.MakeLo(17, tlb.LoV|tlb.LoD)})
	tl.WriteIndexed(10, tlb.Entry{Hi: tlb.MakeHi(16, 1), Lo: tlb.MakeLo(24, tlb.LoV|tlb.LoD)})
	tl.WriteIndexed(11, tlb.Entry{Hi: tlb.MakeHi(17, 1), Lo: tlb.MakeLo(25, tlb.LoV|tlb.LoD)})
	for _, pa := range []uint32{16, 17, 24, 25} {
		if err := m.StoreWord(pa<<arch.PageShift, 0x1111*pa); err != nil {
			t.Fatal(err)
		}
	}

	c.PC = p.MustSymbol("start")
	c.NPC = c.PC + 4
	return &tortureMachine{c: c, m: m, tl: tl, smcPA: p.MustSymbol("smc")}
}

// tortureMutate applies mutation round r — identically on every
// machine it is called with.
func (tm *tortureMachine) tortureMutate(r uint32) {
	switch r % 7 {
	case 0:
		// CAM/data upset on a data entry: flips V, D, or a PFN/VPN bit.
		hi := []uint32{0, 1 << arch.PageShift}[r>>3%2]
		lo := []uint32{tlb.LoD, tlb.LoV, 1 << arch.PageShift}[r>>4%3]
		tm.tl.FlipBits(int(8+r>>2%4), hi, lo)
	case 1:
		vpn := 16 + r>>2%2
		asid := uint8(r >> 5 % 2)
		tm.tl.WriteRandom(tlb.Entry{Hi: tlb.MakeHi(vpn, asid), Lo: tlb.MakeLo(vpn, tlb.LoV|tlb.LoD)})
	case 2:
		tm.tl.UpdateProtection(int(8+r>>2%4), r>>3%2 == 0, r>>4%2 == 0)
	case 3:
		// ASID switch: micro-TLB entries for the old space must not serve
		// the new one.
		tm.c.CP0[arch.C0EntryHi] = tlb.MakeHi(0, uint8(r>>2%2))
	case 4:
		// Self-modifying code from outside the pipeline: toggle the smc
		// instruction's rt between t0 (8) and t1 (9). The predecode cache
		// must observe the store via the page generation.
		pg := tm.m.PageRef(tm.smcPA)
		pg.SetWord(tm.smcPA, pg.Word(tm.smcPA)^(1<<16))
	case 5:
		tm.tl.InvalidatePage(16+r>>2%2, uint8(r>>3%2))
	case 6:
		// Restore the data mappings so faults stay episodic rather than
		// the steady state.
		tm.tl.WriteIndexed(8, tlb.Entry{Hi: tlb.MakeHi(16, 0), Lo: tlb.MakeLo(16, tlb.LoV|tlb.LoD)})
		tm.tl.WriteIndexed(9, tlb.Entry{Hi: tlb.MakeHi(17, 0), Lo: tlb.MakeLo(17, tlb.LoV|tlb.LoD)})
	}
}

// snapshot captures every architecturally visible quantity the fast
// path could plausibly disturb.
func (tm *tortureMachine) snapshot() string {
	c := tm.c
	return fmt.Sprintf("pc=%#x npc=%#x gpr=%v hi=%#x lo=%#x cp0=%v insts=%d cycles=%d writes=%d tlbhits=%d tlbmisses=%d",
		c.PC, c.NPC, c.GPR, c.HI, c.LO, c.CP0, c.Insts, c.Cycles, c.MemWrites, c.TLB.Hits, c.TLB.Misses)
}

// TestFastPathTortureLockstep drives the interpreter with and without
// the fast path through an identical schedule of TLB upsets, random
// refills, protection changes, ASID switches, page invalidations, and
// self-modifying code, comparing the complete architectural state after
// every chunk. Any invalidation hole in the micro-TLBs or predecode
// cache diverges the two machines.
func TestFastPathTortureLockstep(t *testing.T) {
	fast := newTortureMachine(t, false)
	slow := newTortureMachine(t, true)

	const chunk = 97 // odd so chunk boundaries drift across the loop body
	for r := uint32(0); r < 400; r++ {
		for _, tm := range []*tortureMachine{fast, slow} {
			_, err := tm.c.Run(chunk)
			var be *BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("round %d: run ended: %v (pc=%#x)", r, err, tm.c.PC)
			}
		}
		if f, s := fast.snapshot(), slow.snapshot(); f != s {
			t.Fatalf("round %d: divergence\nfast: %s\nslow: %s", r, f, s)
		}
		fast.tortureMutate(r)
		slow.tortureMutate(r)
	}

	// The schedule must have actually exercised the interesting paths.
	if fast.c.GPR[22] == 0 { // s6: exception count
		t.Error("torture schedule provoked no exceptions")
	}
	if fast.c.TLB.Misses == 0 || fast.c.TLB.Hits == 0 {
		t.Errorf("degenerate TLB traffic: hits=%d misses=%d", fast.c.TLB.Hits, fast.c.TLB.Misses)
	}
	if fast.c.ipages == nil {
		t.Error("fast machine never engaged the predecode cache")
	}
	if slow.c.ipages != nil {
		t.Error("NoFastPath machine engaged the predecode cache")
	}

	// Data pages must match byte-for-byte across modes.
	for _, pa := range []uint32{16 << arch.PageShift, 17 << arch.PageShift, 24 << arch.PageShift, 25 << arch.PageShift} {
		fb, err1 := fast.m.Read(pa, arch.PageSize)
		sb, err2 := slow.m.Read(pa, arch.PageSize)
		if err1 != nil || err2 != nil {
			t.Fatalf("read page %#x: %v %v", pa, err1, err2)
		}
		if string(fb) != string(sb) {
			t.Errorf("page %#x differs across modes", pa)
		}
	}
}
