package cpu

import (
	"testing"

	"uexc/internal/arch"
	"uexc/internal/tlb"
)

// TestKSeg2MappedKernelAccess: the mapped kernel segment translates
// through the TLB in kernel mode and is inaccessible from user mode.
func TestKSeg2MappedKernelAccess(t *testing.T) {
	tm := newTestMachine(t)
	// Map kseg2 page 0xc0000xxx -> pfn 0x300.
	vpn := uint32(arch.KSeg2Base) >> arch.PageShift
	tm.tl.WriteIndexed(3, tlb.Entry{
		Hi: tlb.MakeHi(vpn, 0),
		Lo: tlb.MakeLo(0x300, tlb.LoV|tlb.LoD|tlb.LoG),
	})
	p := tm.load(`
		.org 0x80002000
start:
		li   t0, 0xc0000000
		li   t1, 0xfeed
		sw   t1, 16(t0)
		lw   v0, 16(t0)
		hcall 1
		hcall 0
	`)
	tm.run(p, 100)
	if r := tm.record(1); r.v0 != 0xfeed {
		t.Errorf("kseg2 word = %#x", r.v0)
	}
	// The data must have landed at the mapped physical frame.
	w, _ := tm.m.LoadWord(0x300<<arch.PageShift + 16)
	if w != 0xfeed {
		t.Errorf("physical word = %#x", w)
	}
}

func TestKSeg2UnmappedFaultsInKernel(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80000080
		mfc0 v0, c0_cause
		hcall 1
		hcall 0
		.org 0x80002000
start:
		li   t0, 0xc0100000    # kseg2, no TLB entry
		lw   v0, 0(t0)
		hcall 0
	`)
	tm.run(p, 100)
	// Kernel-mode kseg2 misses vector to the general handler, not the
	// user refill vector.
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcTLBL {
		t.Errorf("cause = %#x, want TLBL", r.v0)
	}
}

func TestUserKSeg2AccessIsAddressError(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(enterUserHarness + `
		.org 0x4000
user:
		li   t0, 0xc0000000
		lw   v0, 0(t0)
		nop
	`)
	tm.run(p, 200)
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcAdEL {
		t.Errorf("cause = %#x, want AdEL", r.v0)
	}
}

// TestTeraModeDelaySlotBD: direct user delivery must flag delay-slot
// faults in the condition register and point XT at the branch.
func TestTeraModeDelaySlotBD(t *testing.T) {
	tm := newTestMachine(t)
	enableTera(tm, arch.ExcBp)
	p := tm.load(teraHarness + `
		.org 0x4000
user:
		la   t0, handler
		mtxt t0
branchpc:
		b    after
		break                  # fault in the delay slot
after:
		syscall

handler:
		mfxc s0                # condition register
		mfxt s1                # faulting address (the branch)
		syscall
	`)
	tm.run(p, 300)
	if got := tm.c.GPR[arch.RegS0]; got&arch.CauseBD == 0 {
		t.Errorf("XC = %#x, want BD set", got)
	}
	if got := tm.c.GPR[arch.RegS0] >> arch.CauseExcShift & 31; got != arch.ExcBp {
		t.Errorf("XC code = %d, want Bp", got)
	}
	if got := tm.c.GPR[arch.RegS1]; got != p.MustSymbol("branchpc") {
		t.Errorf("XT = %#x, want branch at %#x", got, p.MustSymbol("branchpc"))
	}
}

// TestTeraModeKernelFaultNeverDirect: exceptions raised in kernel mode
// must never take the direct user path even when claimed.
func TestTeraModeKernelFaultNeverDirect(t *testing.T) {
	tm := newTestMachine(t)
	enableTera(tm, arch.ExcBp)
	p := tm.load(`
		.org 0x80000080
		mfc0 v0, c0_cause
		hcall 1
		hcall 0
		.org 0x80002000
start:
		la   t0, 0x5000
		mtxt t0               # XT loaded, but we are in kernel mode
		break
		hcall 0
	`)
	tm.run(p, 100)
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcBp {
		t.Fatalf("kernel break did not reach the kernel vector")
	}
}
