// Package cpu implements the execution core of the simulated machine:
// an in-order interpreter for the R3000-like ISA defined in
// internal/arch, with branch delay slots, precise synchronous
// exceptions, a software-managed TLB, the CP0 system-control registers,
// and cycle accounting at a configurable cost model.
//
// Two features model the paper's proposed hardware support (Section 2):
//
//   - Tera-style direct user-level exception delivery: when enabled, a
//     synchronous exception whose class the process has claimed is
//     delivered by loading the exception-condition register and
//     exchanging the PC with the exception-target register, without
//     entering the kernel. The XRET instruction exchanges back.
//   - A per-TLB-entry U bit allowing user code to amplify or restrict
//     protection (never translation) on its own entries via UTLBMOD.
//
// The CPU itself knows nothing about processes or Unix; the simulated
// kernel in internal/kernel builds those on top.
package cpu

import (
	"fmt"

	"uexc/internal/arch"
	"uexc/internal/mem"
	"uexc/internal/tlb"
)

// CostModel assigns cycle costs to dynamic events. The defaults model a
// 25 MHz R3000 with warm caches: single-cycle issue, an extra cycle for
// cache access on loads/stores, a short pipeline drain on exception
// entry, and R3000 multiply/divide latencies.
type CostModel struct {
	Inst           uint64 // base cost of every instruction
	LoadStoreExtra uint64 // additional cost of a memory access
	ExceptionEntry uint64 // pipeline flush + vector fetch on exception
	MultExtra      uint64 // additional cycles for mult/multu
	DivExtra       uint64 // additional cycles for div/divu
}

// DefaultCost is the calibrated warm-cache model.
func DefaultCost() CostModel {
	return CostModel{
		Inst:           1,
		LoadStoreExtra: 1,
		ExceptionEntry: 5,
		MultExtra:      11,
		DivExtra:       34,
	}
}

// ClockMHz is the simulated clock rate: the paper's 25 MHz DECstation
// 5000/200.
const ClockMHz = 25

// CyclesToMicros converts a cycle count to microseconds at ClockMHz.
func CyclesToMicros(cycles uint64) float64 { return float64(cycles) / ClockMHz }

// HCallFn is the kernel-call hook: the simulated kernel's "compiled C"
// layer. It runs host-side with full machine access and may charge
// cycles via CPU.Charge. Returning an error halts simulation (a kernel
// panic).
type HCallFn func(c *CPU, code uint32) error

// OSHooks bundles the kernel-owned CPU hooks behind one interface
// value (see CPU.OS): the HCALL upcall plus the two Tera-mode UEX
// notifications. The simulated kernel implements it directly.
type OSHooks interface {
	HCall(c *CPU, code uint32) error
	OnUEXRecursion(e Exception)
	OnUEXClear()
}

// Exception describes a raised exception for tracing and statistics.
type Exception struct {
	Code     uint32 // arch.Exc*
	PC       uint32 // address of the faulting instruction
	BadVAddr uint32 // for address/TLB errors
	InDelay  bool
	User     bool // taken from user mode
}

// InjectedFault is a synchronous exception forced by a fault injector
// (internal/faultinject): it is raised before the instruction at PC
// executes, as if the hardware had glitched.
type InjectedFault struct {
	Code     uint32
	BadVAddr uint32
	HasBV    bool
}

// CPU is the machine state. Construct with New.
type CPU struct {
	GPR [32]uint32
	HI  uint32
	LO  uint32

	// PC is the address of the next instruction to execute; NPC the one
	// after it (branches redirect NPC so the delay slot at PC still
	// runs).
	PC  uint32
	NPC uint32

	// CP0 registers, indexed by arch.C0*.
	CP0 [32]uint32

	// XT, XC, and XB are the proposed exception-target register and the
	// two condition registers (cause and bad address), all
	// user-accessible — the Tera carries exactly this per-thread state.
	XT uint32
	XC uint32
	XB uint32

	// TeraMode enables direct user-level delivery for exception classes
	// in UserVector (a bit per arch.Exc* code).
	TeraMode   bool
	UserVector uint32

	// FixedVector, when non-zero in TeraMode, selects §2.2's alternative
	// delivery specification: instead of exchanging PC with XT, the
	// hardware vectors to this fixed, architecturally-defined address in
	// the user address space (XT still receives the faulting PC so XRET
	// returns the same way).
	FixedVector uint32

	// HWUTLBMod selects whether the user-level TLB protection update
	// instruction is implemented in hardware. When false, a user-mode
	// UTLBMOD raises a reserved-instruction exception regardless of the
	// U bit, and the kernel may emulate the opcode — the software
	// variant of §3.2.3. New machines have the hardware (true).
	HWUTLBMod bool

	Mem *mem.Memory
	TLB *tlb.TLB

	// NoFastPath disables the micro-TLB / predecoded-instruction /
	// direct-page fast paths (fastpath.go), forcing every access down
	// the uncached interpreter path. The fast path is observationally
	// transparent, so this only changes speed; tests flip it to verify
	// exactly that. Equivalent to Engine=EngineInterp, kept as the
	// historical master kill switch (it also suppresses the JIT).
	NoFastPath bool

	// Engine is the three-way execution-tier switch (translate.go):
	// translated basic blocks (EngineJIT, the default), the fast-path
	// interpreter (EngineFast), or the uncached reference interpreter
	// (EngineInterp). All three are observationally identical.
	Engine Engine

	// InjectUserOnly declares that the installed Inject hook is a pure
	// no-op in kernel mode (returns nil, no side effects), which lets
	// the JIT translate kernel-mode code while a fault-injection
	// campaign is armed. internal/faultinject sets it; any injector
	// that observes kernel-mode steps must leave it false.
	InjectUserOnly bool

	// Micro-TLBs and the predecoded instruction cache (fastpath.go).
	itlb      [microEntries]utlbEntry
	dtlb      [microEntries]utlbEntry
	itlbClock uint8
	dtlbClock uint8
	microGen  uint64 // TLB.Gen the micro-TLBs were last synced to
	ipages    map[uint32]*pageInsts
	lastIPfn  uint32 // instsFor memo: pfn+1 (0 = empty)
	lastIPi   *pageInsts

	Cost   CostModel
	Cycles uint64
	Insts  uint64

	// FastHits counts accesses served entirely by the fast path (a
	// micro-TLB hit, counted or direct-mapped). Purely statistical —
	// never part of a determinism fingerprint — it feeds the serving
	// layer's metrics surface.
	FastHits uint64

	// Translation-tier statistics (translate.go), harvested into the
	// serving layer's metrics. Like FastHits these are purely
	// diagnostic — never part of a determinism fingerprint (block
	// shapes depend on pool reuse and engine selection).
	JITBlocks        uint64 // blocks compiled (including recompiles)
	JITExecs         uint64 // block executions that retired >= 1 inst
	JITGuardMisses   uint64 // entry guard mismatches (vpn/mode/counted)
	JITInvalidations uint64 // page-generation invalidations observed

	// MemWrites counts successful data stores; the watchdog uses it as a
	// cheap progress signal (a machine that stores is not livelocked by
	// pure register cycling alone).
	MemWrites uint64

	// HCall is invoked by the kernel-mode HCALL instruction.
	HCall HCallFn

	// OS, when non-nil, supersedes the HCall / OnUEXRecursion /
	// OnUEXClear func hooks with a single interface value. Attaching an
	// OS this way is allocation-free — an interface holding an existing
	// pointer is two words, where taking the three method values costs
	// three closure allocations per attach, which the fork-from-snapshot
	// checkout path pays per machine. The func hooks remain for tests
	// and ad-hoc instrumentation.
	OS OSHooks

	// Inject, when non-nil, is consulted at the top of every Step; a
	// non-nil result raises that exception instead of executing the
	// instruction at PC. Hook point for internal/faultinject.
	Inject func(c *CPU) *InjectedFault

	// OnUEXRecursion, when non-nil, is called when a TeraMode machine
	// suppresses direct user delivery of a claimed exception because the
	// UEX recursion bit is already set (§2's double-fault indication).
	// The exception then proceeds down the architectural kernel path;
	// the hook lets the kernel record the recursion and arrange
	// escalation (fallback or controlled kill) before that delivery.
	OnUEXRecursion func(e Exception)

	// OnUEXClear, when non-nil, is called when an XRET instruction
	// clears a set UEX bit — a user-level handler just completed. The
	// kernel uses it to restore the u-area claim mask it blanked for the
	// handler's duration (the software analogue of the hardware UEX
	// delivery gate: while a handler is in progress, claimed exceptions
	// must take the kernel path so the in-progress exception frame is
	// never overwritten).
	OnUEXClear func()

	// Watchdog, when non-nil, monitors Run for livelock.
	Watchdog *Watchdog

	// Halted stops Run; set by the kernel's exit path.
	Halted bool

	// CountPCs enables per-PC dynamic instruction counting (used to
	// reproduce Table 3's per-phase kernel instruction counts).
	CountPCs bool
	PCCounts map[uint32]uint64

	// ExcCounts tallies raised exceptions by code; Trace, when non-nil,
	// receives every exception.
	ExcCounts [32]uint64
	Trace     func(Exception)

	// Debug, when non-nil, attaches a virtual-breakpoint guard table
	// (debug.go): Step pauses the CPU (Halted, Debug.Hit) before any
	// instruction that fetches from or touches a guarded page, with
	// zero architectural effect and zero accounting. While attached the
	// JIT tier stands down so every instruction is checked.
	Debug *DebugGuard

	prevWasBranch bool // previous executed instruction was a branch/jump

	// redirect marks that execute() replaced PC/NPC itself (XRET, RFE
	// return paths that must bypass the fall-through update).
	redirect bool
	// execNPC/execBranch carry the control-flow result out of execute():
	// the instruction after the delay slot and whether a branch was taken
	// (scratch state valid only within one Step).
	execNPC    uint32
	execBranch bool
	// pendingHookErr carries an HCALL hook failure out of execute().
	pendingHookErr error
}

// New creates a CPU attached to the given memory and TLB, with PC at the
// reset vector and kernel mode active.
func New(m *mem.Memory, t *tlb.TLB) *CPU { return Init(new(CPU), m, t) }

// Init initializes a CPU in place, for callers that embed one in a
// larger allocation (the fork shell builds a whole machine from a
// single allocation; see kernel.NewForRestore). c must be zero-valued
// — a fresh allocation — so only the non-zero fields need writing;
// rewriting a used CPU is ResetAll's job, not Init's.
func Init(c *CPU, m *mem.Memory, t *tlb.TLB) *CPU {
	c.Mem, c.TLB = m, t
	c.Cost = DefaultCost()
	c.HWUTLBMod = true
	c.Engine = DefaultEngine
	c.Reset()
	return c
}

// Reset re-initializes architectural state (memory and TLB contents are
// left alone; callers reset those separately if desired).
func (c *CPU) Reset() {
	c.GPR = [32]uint32{}
	c.HI, c.LO = 0, 0
	c.CP0 = [32]uint32{}
	c.CP0[arch.C0PRId] = 0x0230 // R3000-ish revision id
	c.PC = arch.VecReset
	c.NPC = c.PC + 4
	c.XT, c.XC, c.XB = 0, 0, 0
	c.Halted = false
	c.prevWasBranch = false
	c.flushMicroTLB()
}

// ResetAll restores the CPU to its as-constructed state: architectural
// registers (via Reset) plus counters, delivery configuration, cost
// model, and every installed hook. The attached memory and TLB are
// reused; their contents are the caller's to reset. This is the
// processor half of the machine-reset path that lets pooled machines
// be recycled across simulator runs.
func (c *CPU) ResetAll() {
	c.Reset()
	c.TeraMode, c.UserVector, c.FixedVector = false, 0, 0
	c.HWUTLBMod = true
	c.Cost = DefaultCost()
	c.Cycles, c.Insts, c.MemWrites = 0, 0, 0
	c.FastHits = 0
	c.HCall = nil
	c.OS = nil
	c.Inject = nil
	c.OnUEXRecursion, c.OnUEXClear = nil, nil
	c.Watchdog = nil
	c.CountPCs, c.PCCounts = false, nil
	c.ExcCounts = [32]uint64{}
	c.Trace = nil
	c.Debug = nil
	c.redirect = false
	c.pendingHookErr = nil
	c.NoFastPath = false
	c.Engine = DefaultEngine
	c.InjectUserOnly = false
	c.JITBlocks, c.JITExecs, c.JITGuardMisses, c.JITInvalidations = 0, 0, 0, 0
	c.itlbClock, c.dtlbClock = 0, 0
	c.microGen = 0
	// ipages is deliberately kept: predecoded instructions are keyed by
	// physical page and validated against the page's store generation,
	// which Memory.Reset advances, so entries from a previous run can
	// never leak stale decodes — and pooled machines skip re-decoding
	// the shared kernel text on every recycle. Translated blocks ride
	// along (pageInsts.blocks) under the same generation guard: a
	// recycled machine re-enters a kept block only after revalidating
	// it against the page generation Memory.Reset advanced.
}

// Charge adds cycles outside normal instruction accounting; used by the
// kernel's modeled C phases.
func (c *CPU) Charge(cycles uint64) { c.Cycles += cycles }

// KernelMode reports whether the CPU is currently privileged
// (Status.KUc == 0).
func (c *CPU) KernelMode() bool { return c.CP0[arch.C0Status]&arch.SrKUc == 0 }

// ASID returns the current address-space identifier from EntryHi.
func (c *CPU) ASID() uint8 {
	return uint8(c.CP0[arch.C0EntryHi] & tlb.HiASIDMask >> tlb.HiASIDShft)
}

// excSignal carries a pending exception out of instruction execution.
type excSignal struct {
	code  uint32
	badva uint32
	hasBV bool
	// refill marks a TLB miss (no matching entry) on a kuseg address,
	// which vectors through the special UTLB-miss vector.
	refill bool
}

func (e *excSignal) Error() string {
	return fmt.Sprintf("exception %s badva=%#x", arch.ExcName(e.code), e.badva)
}

func exc(code uint32) *excSignal { return &excSignal{code: code} }

func excAddr(code, badva uint32, refill bool) *excSignal {
	return &excSignal{code: code, badva: badva, hasBV: true, refill: refill}
}

// AccessKind distinguishes translation purposes.
type AccessKind uint8

const (
	AccFetch AccessKind = iota
	AccLoad
	AccStore
)

// translate maps a virtual address to physical for the given access
// kind, raising the architectural exception on failure. On success it
// also describes the translation for micro-TLB filling: whether it went
// through the TLB (counted, for hit statistics) and whether it permits
// stores.
func (c *CPU) translate(va uint32, kind AccessKind) (uint32, fillInfo, *excSignal) {
	user := !c.KernelMode()
	loadCode, storeCode := arch.ExcAdEL, arch.ExcAdES
	switch {
	case arch.InKUSeg(va):
		e, _, ok := c.TLB.Lookup(va, c.ASID())
		if !ok {
			code := arch.ExcTLBL
			if kind == AccStore {
				code = arch.ExcTLBS
			}
			return 0, fillInfo{}, excAddr(code, va, true)
		}
		if !e.Valid() {
			code := arch.ExcTLBL
			if kind == AccStore {
				code = arch.ExcTLBS
			}
			return 0, fillInfo{}, excAddr(code, va, false)
		}
		if kind == AccStore && !e.Writable() {
			return 0, fillInfo{}, excAddr(arch.ExcMod, va, false)
		}
		return e.PFN()<<arch.PageShift | va&(arch.PageSize-1),
			fillInfo{counted: true, writable: e.Writable()}, nil
	case arch.InKSeg0(va), arch.InKSeg1(va):
		if user {
			code := loadCode
			if kind == AccStore {
				code = storeCode
			}
			return 0, fillInfo{}, excAddr(code, va, false)
		}
		return arch.KSegPhys(va), fillInfo{counted: false, writable: true}, nil
	default: // kseg2: kernel, mapped
		if user {
			code := loadCode
			if kind == AccStore {
				code = storeCode
			}
			return 0, fillInfo{}, excAddr(code, va, false)
		}
		e, _, ok := c.TLB.Lookup(va, c.ASID())
		if !ok || !e.Valid() {
			code := arch.ExcTLBL
			if kind == AccStore {
				code = arch.ExcTLBS
			}
			return 0, fillInfo{}, excAddr(code, va, false)
		}
		if kind == AccStore && !e.Writable() {
			return 0, fillInfo{}, excAddr(arch.ExcMod, va, false)
		}
		return e.PFN()<<arch.PageShift | va&(arch.PageSize-1),
			fillInfo{counted: true, writable: e.Writable()}, nil
	}
}

func (c *CPU) loadWord(va uint32) (uint32, *excSignal) {
	if va&3 != 0 {
		return 0, excAddr(arch.ExcAdEL, va, false)
	}
	if e := c.dtlbLookup(va, false); e != nil {
		if e.counted {
			c.TLB.Hits++
		}
		return e.page.Word(va), nil
	}
	pa, fi, sig := c.translate(va, AccLoad)
	if sig != nil {
		return 0, sig
	}
	v, err := c.Mem.LoadWord(pa)
	if err != nil {
		return 0, excAddr(arch.ExcDBE, va, false)
	}
	c.fillDTLB(va, pa, fi)
	return v, nil
}

func (c *CPU) loadHalf(va uint32) (uint16, *excSignal) {
	if va&1 != 0 {
		return 0, excAddr(arch.ExcAdEL, va, false)
	}
	if e := c.dtlbLookup(va, false); e != nil {
		if e.counted {
			c.TLB.Hits++
		}
		return e.page.Half(va), nil
	}
	pa, fi, sig := c.translate(va, AccLoad)
	if sig != nil {
		return 0, sig
	}
	v, err := c.Mem.LoadHalf(pa)
	if err != nil {
		return 0, excAddr(arch.ExcDBE, va, false)
	}
	c.fillDTLB(va, pa, fi)
	return v, nil
}

func (c *CPU) loadByte(va uint32) (uint8, *excSignal) {
	if e := c.dtlbLookup(va, false); e != nil {
		if e.counted {
			c.TLB.Hits++
		}
		return e.page.Byte(va), nil
	}
	pa, fi, sig := c.translate(va, AccLoad)
	if sig != nil {
		return 0, sig
	}
	v, err := c.Mem.LoadByte(pa)
	if err != nil {
		return 0, excAddr(arch.ExcDBE, va, false)
	}
	c.fillDTLB(va, pa, fi)
	return v, nil
}

func (c *CPU) storeWord(va, v uint32) *excSignal {
	if va&3 != 0 {
		return excAddr(arch.ExcAdES, va, false)
	}
	if e := c.dtlbLookup(va, true); e != nil {
		if e.counted {
			c.TLB.Hits++
		}
		e.page.SetWord(va, v)
		c.MemWrites++
		return nil
	}
	pa, fi, sig := c.translate(va, AccStore)
	if sig != nil {
		return sig
	}
	if err := c.Mem.StoreWord(pa, v); err != nil {
		return excAddr(arch.ExcDBE, va, false)
	}
	c.MemWrites++
	c.fillDTLB(va, pa, fi)
	return nil
}

func (c *CPU) storeHalf(va uint32, v uint16) *excSignal {
	if va&1 != 0 {
		return excAddr(arch.ExcAdES, va, false)
	}
	if e := c.dtlbLookup(va, true); e != nil {
		if e.counted {
			c.TLB.Hits++
		}
		e.page.SetHalf(va, v)
		c.MemWrites++
		return nil
	}
	pa, fi, sig := c.translate(va, AccStore)
	if sig != nil {
		return sig
	}
	if err := c.Mem.StoreHalf(pa, v); err != nil {
		return excAddr(arch.ExcDBE, va, false)
	}
	c.MemWrites++
	c.fillDTLB(va, pa, fi)
	return nil
}

func (c *CPU) storeByte(va uint32, v uint8) *excSignal {
	if e := c.dtlbLookup(va, true); e != nil {
		if e.counted {
			c.TLB.Hits++
		}
		e.page.SetByte(va, v)
		c.MemWrites++
		return nil
	}
	pa, fi, sig := c.translate(va, AccStore)
	if sig != nil {
		return sig
	}
	if err := c.Mem.StoreByte(pa, v); err != nil {
		return excAddr(arch.ExcDBE, va, false)
	}
	c.MemWrites++
	c.fillDTLB(va, pa, fi)
	return nil
}

// raise delivers a pending exception: either the architectural kernel
// path (save to EPC/Cause/Status, vector) or, in TeraMode for claimed
// user-mode exceptions, the direct user-level exchange.
func (c *CPU) raise(sig *excSignal, instPC uint32, inDelay bool) {
	user := !c.KernelMode()
	c.ExcCounts[sig.code&31]++
	if c.Trace != nil {
		c.Trace(Exception{Code: sig.code, PC: instPC, BadVAddr: sig.badva, InDelay: inDelay, User: user})
	}

	epc := instPC
	if inDelay {
		epc = instPC - 4
	}

	sr := c.CP0[arch.C0Status]
	if c.TeraMode && user && sr&arch.SrUEX != 0 && c.UserVector&(1<<sig.code) != 0 &&
		(c.OS != nil || c.OnUEXRecursion != nil) {
		// A claimed exception arrived while a user-level handler was
		// already in progress: the UEX bit forces the kernel path, and
		// the hook gives the OS its chance to police the recursion.
		e := Exception{Code: sig.code, PC: instPC, BadVAddr: sig.badva, InDelay: inDelay, User: user}
		if c.OS != nil {
			c.OS.OnUEXRecursion(e)
		} else {
			c.OnUEXRecursion(e)
		}
	}
	if c.TeraMode && user && sr&arch.SrUEX == 0 && c.UserVector&(1<<sig.code) != 0 {
		// Direct user-level delivery (Tera-style): load condition
		// register, exchange PC and XT, mark UEX. No privilege change,
		// no kernel entry.
		c.XC = sig.code << arch.CauseExcShift
		if inDelay {
			c.XC |= arch.CauseBD
		}
		if sig.hasBV {
			c.CP0[arch.C0BadVAddr] = sig.badva
			c.XB = sig.badva
		}
		c.CP0[arch.C0Status] = sr | arch.SrUEX
		if c.FixedVector != 0 {
			c.XT, c.PC = epc, c.FixedVector
		} else {
			c.XT, c.PC = epc, c.XT
		}
		c.NPC = c.PC + 4
		c.prevWasBranch = false
		c.Cycles += c.Cost.ExceptionEntry
		return
	}

	// Architectural kernel delivery.
	c.CP0[arch.C0EPC] = epc
	cause := sig.code << arch.CauseExcShift
	if inDelay {
		cause |= arch.CauseBD
	}
	c.CP0[arch.C0Cause] = cause
	if sig.hasBV {
		c.CP0[arch.C0BadVAddr] = sig.badva
		c.CP0[arch.C0EntryHi] = sig.badva&tlb.HiVPNMask |
			c.CP0[arch.C0EntryHi]&tlb.HiASIDMask
		c.CP0[arch.C0Context] = c.CP0[arch.C0Context]&0xffe00000 |
			sig.badva>>arch.PageShift&0x7ffff<<2
	}
	// Push the KU/IE stack and enter kernel mode with interrupts off.
	c.CP0[arch.C0Status] = sr&^0x3f | sr&0xf<<2

	vec := arch.VecGeneral
	if sig.refill && user {
		vec = arch.VecUTLBMiss
	}
	c.PC = vec
	c.NPC = vec + 4
	c.prevWasBranch = false
	c.Cycles += c.Cost.ExceptionEntry
}

// RaiseExternal lets the simulated kernel's host-side code re-raise an
// exception through the architectural path (used by the subpage
// emulation to re-deliver a fault as if it had just occurred at pc).
func (c *CPU) RaiseExternal(code, badva, pc uint32, inDelay bool) {
	sig := &excSignal{code: code, badva: badva, hasBV: true}
	if inDelay {
		pc += 4 // raise() will subtract it back
	}
	c.raise(sig, pc, inDelay)
}

// Step executes one instruction (or takes one exception). It returns an
// error only for simulator-level failures (kernel hook errors), never
// for architectural exceptions.
func (c *CPU) Step() error {
	instPC := c.PC
	inDelay := c.prevWasBranch

	if c.Debug != nil && c.Debug.pages[instPC>>arch.PageShift]&DebugFetch != 0 {
		// Pause before the instruction exists architecturally: no fetch,
		// no fault, no injection, no accounting.
		c.debugPause(instPC, instPC, DebugFetch)
		return nil
	}

	if c.Inject != nil {
		if f := c.Inject(c); f != nil {
			c.raise(&excSignal{code: f.Code, badva: f.BadVAddr, hasBV: f.HasBV}, instPC, inDelay)
			return nil
		}
	}

	if instPC&3 != 0 || (!c.KernelMode() && !arch.InKUSeg(instPC)) {
		c.raise(excAddr(arch.ExcAdEL, instPC, false), instPC, inDelay)
		return nil
	}
	var inst arch.Inst
	if e := c.itlbLookup(instPC); e != nil {
		if e.counted {
			c.TLB.Hits++
		}
		// Manually inlined pageInsts.fetch: this is the hottest line of
		// the whole simulator.
		pi := e.insts
		w := instPC & (arch.PageSize - 1) >> 2
		if g := e.page.Gen(); pi.gen == g && pi.filled[w>>6]&(1<<(w&63)) != 0 {
			inst = pi.insts[w]
		} else {
			inst = pi.fetch(e.page, instPC)
		}
	} else {
		pa, fi, sig := c.translate(instPC, AccFetch)
		if sig != nil {
			c.raise(sig, instPC, inDelay)
			return nil
		}
		if pg := c.Mem.PageRef(pa); pg != nil && !c.fastOff() {
			// Decode through the predecode cache even when the micro-TLBs
			// are bypassed (InjectMiss installed): decoding is pure and
			// the cache is generation-checked, so the result is identical.
			pi := c.instsFor(pa, pg)
			w := pa & (arch.PageSize - 1) >> 2
			if g := pg.Gen(); pi.gen == g && pi.filled[w>>6]&(1<<(w&63)) != 0 {
				inst = pi.insts[w]
			} else {
				inst = pi.fetch(pg, instPC)
			}
			c.fillITLB(instPC, fi, pg, pi)
		} else {
			w, err := c.Mem.LoadWord(pa)
			if err != nil {
				c.raise(excAddr(arch.ExcIBE, instPC, false), instPC, inDelay)
				return nil
			}
			inst = arch.Decode(w)
		}
	}
	if c.Debug != nil {
		if va, acc, ok := debugDataEA(&inst, &c.GPR); ok {
			if hit := c.Debug.pages[va>>arch.PageShift] & acc; hit != 0 {
				// Pause before the access (and before the instruction
				// retires): zero architectural effect, zero accounting,
				// even if the access would have faulted.
				c.debugPause(instPC, va, hit)
				return nil
			}
		}
	}
	c.Insts++
	c.Cycles += c.Cost.Inst
	if c.CountPCs {
		if c.PCCounts == nil {
			c.PCCounts = make(map[uint32]uint64)
		}
		c.PCCounts[instPC]++
	}

	// Default control flow: fall through to NPC; execute's branch cases
	// redirect execNPC via branchTo.
	nextPC := c.NPC
	c.execNPC = c.NPC + 4
	c.execBranch = false

	if sig := c.execute(&inst, instPC); sig != nil {
		// Faulting instruction has no architectural effect; deliver.
		c.raise(sig, instPC, inDelay)
		return nil
	}

	// XRET and RFE-to-user redirections adjust PC directly in execute
	// via the redirect fields below.
	if c.redirect {
		c.redirect = false
		c.prevWasBranch = false
		return c.hookErr()
	}

	c.PC, c.NPC = nextPC, c.execNPC
	c.prevWasBranch = c.execBranch
	c.GPR[0] = 0
	return c.hookErr()
}

// branchTo redirects the instruction after the delay slot; called by
// execute's branch and jump cases.
func (c *CPU) branchTo(target uint32) {
	c.execNPC = target
	c.execBranch = true
}

func (c *CPU) hookErr() error {
	err := c.pendingHookErr
	c.pendingHookErr = nil
	return err
}

// Run executes until the CPU halts or maxInsts instructions have
// retired. It returns the number of instructions executed. Budget
// exhaustion is reported as a *BudgetError; if a Watchdog is attached
// and detects a state cycle, Run stops early with a *LivelockError.
//
// Under EngineJIT, Run dispatches translated basic blocks where
// jitStep can prove exactness and falls back to single interpreter
// steps everywhere else. The watchdog observes at block granularity
// on the JIT path: the detector is exact (it fires only on true state
// cycles), so coarser observation can only shift *when* a livelock is
// caught, never *whether*.
func (c *CPU) Run(maxInsts uint64) (uint64, error) {
	start := c.Insts
	for !c.Halted && c.Insts-start < maxInsts {
		if c.Engine == EngineJIT && c.jitStep(maxInsts-(c.Insts-start)) {
			if c.Watchdog != nil {
				if err := c.Watchdog.Observe(c); err != nil {
					return c.Insts - start, err
				}
			}
			continue
		}
		if err := c.Step(); err != nil {
			return c.Insts - start, err
		}
		if c.Watchdog != nil {
			if err := c.Watchdog.Observe(c); err != nil {
				return c.Insts - start, err
			}
		}
	}
	if !c.Halted {
		return c.Insts - start, &BudgetError{Budget: maxInsts, PC: c.PC}
	}
	return c.Insts - start, nil
}
