package cpu

import "uexc/internal/arch"

// Virtual breakpoints and watchpoints (DESIGN.md §16): a page-granular
// guard table consulted by Step before an instruction has any
// architectural effect. This is the simulator-level analogue of the
// page-protection breakpoint scheme in "Virtual Breakpoints for x86/64"
// (arXiv 1801.09250) — guarding whole pages instead of patching
// instructions — except the guard lives beside the MMU rather than in
// the PTEs, so the guest-visible protection state (and therefore every
// campaign digest) is untouched by an attached debugger.
//
// A guarded access pauses the CPU: Halted is set, Hit records what was
// about to happen, and the instruction is NOT executed, counted, or
// charged — resuming after clearing the guard (or stepping over with
// the guard lifted) retires it exactly as if the debugger had never
// been attached. The driver loop in internal/debug narrows page-granular
// hits to the exact watched words and silently steps over innocent
// neighbours.

// DebugAccess is a bitmask of access kinds a guard traps or a hit
// performed.
type DebugAccess uint8

const (
	DebugFetch DebugAccess = 1 << iota
	DebugLoad
	DebugStore
)

// String names the access set ("fetch", "load", "store", "load|store"...).
func (a DebugAccess) String() string {
	s := ""
	for _, p := range [...]struct {
		bit  DebugAccess
		name string
	}{{DebugFetch, "fetch"}, {DebugLoad, "load"}, {DebugStore, "store"}} {
		if a&p.bit != 0 {
			if s != "" {
				s += "|"
			}
			s += p.name
		}
	}
	if s == "" {
		return "none"
	}
	return s
}

// DebugHit describes the access that paused the CPU: the PC of the
// not-yet-executed instruction, the virtual address it was about to
// touch (the PC itself for fetch hits; partial-word accesses report the
// aligned word), and which guarded access kinds it performs.
type DebugHit struct {
	PC     uint32
	VA     uint32
	Access DebugAccess
}

// DebugGuard is the guard table. Attach it via CPU.Debug; while
// attached, the JIT tier stands down (jitStep refuses) so every
// instruction is visible to the Step-level checks — the fast-path
// interpreter stays on, and all engines remain observationally
// identical under a guard that never fires.
type DebugGuard struct {
	pages map[uint32]DebugAccess // vpn -> trapped access kinds

	// Hit is set when a guarded access pauses the CPU (Halted=true).
	// The driver clears it (and Halted) before resuming.
	Hit *DebugHit
}

// NewDebugGuard returns an empty guard table.
func NewDebugGuard() *DebugGuard {
	return &DebugGuard{pages: make(map[uint32]DebugAccess)}
}

// GuardPage adds the given access kinds to the guard set of the page
// containing va.
func (g *DebugGuard) GuardPage(va uint32, acc DebugAccess) {
	g.pages[va>>arch.PageShift] |= acc
}

// UnguardPage removes the given access kinds from the page containing
// va.
func (g *DebugGuard) UnguardPage(va uint32, acc DebugAccess) {
	vpn := va >> arch.PageShift
	if rest := g.pages[vpn] &^ acc; rest == 0 {
		delete(g.pages, vpn)
	} else {
		g.pages[vpn] = rest
	}
}

// GuardedPages returns the number of guarded pages.
func (g *DebugGuard) GuardedPages() int { return len(g.pages) }

// pause records a hit and halts the CPU.
func (c *CPU) debugPause(pc, va uint32, acc DebugAccess) {
	c.Debug.Hit = &DebugHit{PC: pc, VA: va, Access: acc}
	c.Halted = true
}

// debugDataEA computes the effective address and access kinds of a
// memory instruction before execution, mirroring execute()'s address
// arithmetic exactly (partial-word ops access the aligned word; SWL/SWR
// read-modify-write it). ok is false for non-memory instructions.
func debugDataEA(i *arch.Inst, g *[32]uint32) (va uint32, acc DebugAccess, ok bool) {
	switch i.Mn {
	case arch.MnLB, arch.MnLBU, arch.MnLH, arch.MnLHU, arch.MnLW:
		return g[i.Rs] + uint32(i.SImm()), DebugLoad, true
	case arch.MnLWL, arch.MnLWR:
		return (g[i.Rs] + uint32(i.SImm())) &^ 3, DebugLoad, true
	case arch.MnSB, arch.MnSH, arch.MnSW:
		return g[i.Rs] + uint32(i.SImm()), DebugStore, true
	case arch.MnSWL, arch.MnSWR:
		return (g[i.Rs] + uint32(i.SImm())) &^ 3, DebugLoad | DebugStore, true
	}
	return 0, 0, false
}
