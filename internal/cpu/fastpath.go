package cpu

// The interpreter fast path: split 4-entry micro-TLBs over the
// architectural TLB, a per-physical-page predecoded instruction cache,
// and direct page access through mem.Page handles. All three layers
// are observationally transparent — they change time-to-result, never
// the result (DESIGN.md §10 has the invalidation matrix):
//
//   - Micro-TLB entries are keyed by (VPN, ASID, kernel-mode) and hold
//     the physical page handle and protection of a translation that hit
//     a valid TLB entry (or a direct-mapped kseg0/kseg1 window). Any
//     TLB mutation advances tlb.TLB.Gen, and both micro-TLBs flush on
//     the next lookup when the generation moves; ASID changes and mode
//     switches are handled by the key itself. TLB.Hits is advanced on
//     every counted micro-hit, so hit/miss statistics stay byte-
//     identical to the uncached interpreter.
//   - The predecoded instruction cache maps a physical page to lazily
//     decoded arch.Inst values, validated against the page's store
//     generation (mem.Page.Gen) on every fetch: stores into a code page
//     — self-modifying code, program loads, injected corruption — make
//     the next fetch re-decode, exactly like the uncached interpreter's
//     decode-every-fetch behaviour.
//   - Whenever a tlb.TLB.InjectMiss hook is installed (fault-injection
//     campaigns), the micro-TLBs are bypassed entirely so the hook and
//     the statistics see every single lookup; the predecode cache stays
//     active because decoding is pure and generation-checked. NoFastPath
//     (equivalently Engine=EngineInterp, see translate.go) disables
//     everything for differential verification.
//
// The JIT tier (translate.go/block.go) builds on all three layers:
// blocks are discovered through the predecode cache, entered through
// micro-ITLB hits, and invalidated by the same page store generations.

import (
	"uexc/internal/arch"
	"uexc/internal/mem"
)

// microEntries is the size of each micro-TLB (fully associative,
// round-robin replacement).
const microEntries = 4

// Micro-TLB tag layout: VPN in bits 0..19, ASID in 20..25, a
// kernel-mode bit, and a presence bit so the zero entry never matches.
const (
	tagKMode   uint32 = 1 << 26
	tagPresent uint32 = 1 << 27
)

// utlbEntry caches one translation that is guaranteed current as long
// as the backing TLB generation does not move.
type utlbEntry struct {
	tag      uint32
	counted  bool // translation went through the TLB: micro-hits count as TLB hits
	writable bool
	page     *mem.Page
	insts    *pageInsts // ITLB entries only
}

// fillInfo describes a successful slow-path translation for micro-TLB
// filling.
type fillInfo struct {
	counted  bool
	writable bool
}

// pageInsts is the predecoded instruction cache of one physical page,
// validated against the page's store generation. It also owns the
// page's translated basic blocks (block.go), indexed by starting word
// offset; each block carries its own generation/identity guard, so a
// stale entry is revalidated (and recompiled) on entry rather than
// eagerly flushed here.
type pageInsts struct {
	gen    uint64 // mem.Page.Gen at decode time
	filled [arch.PageSize / 4 / 64]uint64
	insts  [arch.PageSize / 4]arch.Inst
	blocks [arch.PageSize / 4]*jitBlock
}

// fetch returns the decoded instruction at the word offset of pa,
// decoding (and re-decoding after any store into the page) on demand.
func (pi *pageInsts) fetch(pg *mem.Page, pa uint32) arch.Inst {
	if pi.gen != pg.Gen() {
		pi.filled = [arch.PageSize / 4 / 64]uint64{}
		pi.gen = pg.Gen()
	}
	w := pa & (arch.PageSize - 1) >> 2
	bit := uint64(1) << (w & 63)
	if pi.filled[w>>6]&bit == 0 {
		pi.insts[w] = arch.Decode(pg.Word(pa))
		pi.filled[w>>6] |= bit
	}
	return pi.insts[w]
}

// microServes reports whether a cached entry may be served right now: a
// counted entry stands in for a TLB.Lookup, which must reach the real
// TLB whenever an InjectMiss hook wants to see every lookup. Uncounted
// entries (direct-mapped kseg0/kseg1) never consult the TLB — no
// Lookup, no Hits/Misses, no hook — so they stay servable under
// fault-injection campaigns.
func (c *CPU) microServes(e *utlbEntry) bool {
	return !e.counted || c.TLB.InjectMiss == nil
}

// microTag builds the lookup key for va under the current ASID and
// privilege mode.
func (c *CPU) microTag(va uint32) uint32 {
	tag := va>>arch.PageShift | uint32(c.ASID())<<20 | tagPresent
	if c.CP0[arch.C0Status]&arch.SrKUc == 0 {
		tag |= tagKMode
	}
	return tag
}

// syncMicroTLB flushes both micro-TLBs if the architectural TLB has
// been mutated since they were last valid.
func (c *CPU) syncMicroTLB() {
	if g := c.TLB.Gen(); g != c.microGen {
		c.flushMicroTLB()
		c.microGen = g
	}
}

// flushMicroTLB empties both micro-TLBs.
func (c *CPU) flushMicroTLB() {
	c.itlb = [microEntries]utlbEntry{}
	c.dtlb = [microEntries]utlbEntry{}
}

// itlbLookup returns the micro-ITLB entry for a fetch from va, or nil
// to take the slow path.
func (c *CPU) itlbLookup(va uint32) *utlbEntry {
	if c.fastOff() {
		return nil
	}
	c.syncMicroTLB()
	tag := c.microTag(va)
	for i := range c.itlb {
		if c.itlb[i].tag == tag {
			if !c.microServes(&c.itlb[i]) {
				return nil
			}
			c.FastHits++
			return &c.itlb[i]
		}
	}
	return nil
}

// dtlbLookup returns the micro-DTLB entry for a data access to va, or
// nil to take the slow path. Stores require the cached translation to
// be writable; a cached read-only page falls back to the slow path,
// which raises Mod with identical statistics.
func (c *CPU) dtlbLookup(va uint32, store bool) *utlbEntry {
	if c.fastOff() {
		return nil
	}
	c.syncMicroTLB()
	tag := c.microTag(va)
	for i := range c.dtlb {
		if c.dtlb[i].tag == tag {
			if store && !c.dtlb[i].writable {
				return nil
			}
			if !c.microServes(&c.dtlb[i]) {
				return nil
			}
			c.FastHits++
			return &c.dtlb[i]
		}
	}
	return nil
}

// instsFor returns (allocating if needed) the predecode cache of the
// physical page holding pa. A one-entry memo short-circuits the map for
// runs of fetches from the same physical page — the common case even
// when the micro-ITLB is bypassed. The memo is keyed purely by physical
// frame: page handles never go stale, so it needs no invalidation.
func (c *CPU) instsFor(pa uint32, pg *mem.Page) *pageInsts {
	pfn := pa >> arch.PageShift
	if c.lastIPfn == pfn+1 {
		return c.lastIPi
	}
	pi := c.ipages[pfn]
	if pi == nil {
		if c.ipages == nil {
			c.ipages = make(map[uint32]*pageInsts)
		}
		pi = &pageInsts{gen: pg.Gen()}
		c.ipages[pfn] = pi
	}
	c.lastIPfn, c.lastIPi = pfn+1, pi
	return pi
}

// fillITLB caches a successful fetch translation.
func (c *CPU) fillITLB(va uint32, fi fillInfo, pg *mem.Page, pi *pageInsts) {
	if c.fastOff() || (fi.counted && c.TLB.InjectMiss != nil) {
		return
	}
	c.syncMicroTLB()
	c.itlb[c.itlbClock] = utlbEntry{
		tag: c.microTag(va), counted: fi.counted, writable: fi.writable,
		page: pg, insts: pi,
	}
	c.itlbClock = (c.itlbClock + 1) % microEntries
}

// fillDTLB caches a successful data translation. Unallocated pages are
// not cached (the slow path's reads-as-zero semantics need the Memory
// bookkeeping); the first store allocates, after which filling works.
func (c *CPU) fillDTLB(va, pa uint32, fi fillInfo) {
	if c.fastOff() || (fi.counted && c.TLB.InjectMiss != nil) {
		return
	}
	pg := c.Mem.PageRef(pa)
	if pg == nil {
		return
	}
	c.syncMicroTLB()
	c.dtlb[c.dtlbClock] = utlbEntry{
		tag: c.microTag(va), counted: fi.counted, writable: fi.writable, page: pg,
	}
	c.dtlbClock = (c.dtlbClock + 1) % microEntries
}
