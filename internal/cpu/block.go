package cpu

// Basic-block discovery and translation for the JIT execution tier
// (translate.go, DESIGN.md §15). A block is a straight-line run of
// instructions from one physical code page, compiled into a dense
// µop array that execBlock dispatches through a single switch — the
// "threaded code" shape: decode/operand work is paid once per
// compile, not once per dynamic instruction.
//
// The compiler is deliberately conservative. A block only contains
// instructions whose non-faulting execution touches GPR/HI/LO/XT and
// data memory — never CP0, the TLB, privilege state, or host hooks —
// so a block body cannot invalidate its own guards mid-flight (the
// one exception, a store into the block's own code page, is detected
// by the executor and exits the block). Everything else ends the
// block: the interpreter remains the single source of truth for
// exceptions, system instructions, and anything with an unprovable
// delay-slot boundary.

import (
	"uexc/internal/arch"
	"uexc/internal/mem"
)

// µop kinds. Dense values so the executor's switch compiles to a
// jump table.
const (
	uNop uint8 = iota

	// shifts
	uSLL  // rd = rt << imm
	uSRL  // rd = rt >> imm
	uSRA  // rd = int32(rt) >> imm
	uSLLV // rd = rt << (rs&31)
	uSRLV // rd = rt >> (rs&31)
	uSRAV // rd = int32(rt) >> (rs&31)

	// hi/lo and multiply/divide
	uMFHI
	uMTHI
	uMFLO
	uMTLO
	uMULT
	uMULTU
	uDIV
	uDIVU

	// three-register ALU
	uADD // overflow-checked: bails to the interpreter on ExcOv
	uADDU
	uSUB // overflow-checked
	uSUBU
	uAND
	uOR
	uXOR
	uNOR
	uSLT
	uSLTU

	// immediate ALU (imm pre-extended at compile time)
	uADDI // overflow-checked
	uADDIU
	uSLTI
	uSLTIU
	uANDI
	uORI
	uXORI
	uLUI // imm holds the pre-shifted constant

	// exception-register moves (unprivileged by design, §2)
	uMFXT
	uMTXT
	uMFXC
	uMFXB

	// loads/stores (imm = sign-extended displacement)
	uLB
	uLBU
	uLH
	uLHU
	uLW
	uSB
	uSH
	uSW

	// block terminators: branches and jumps, each followed in ops by
	// its (compilable, non-branch, same-page) delay slot. imm holds
	// the absolute taken target for J/JAL and the conditional
	// branches; JR/JALR read it from rs at run time.
	uJ
	uJAL
	uJR
	uJALR
	uBEQ
	uBNE
	uBLEZ
	uBGTZ
	uBLTZ
	uBGEZ
	uBLTZAL
	uBGEZAL
)

// uop is one translated instruction: 8 bytes, operands pre-extracted
// and immediates pre-extended/pre-resolved.
type uop struct {
	kind uint8
	rd   uint8 // destination (0 = architecturally discarded)
	rs   uint8
	rt   uint8
	imm  uint32
}

// jitBlock is one compiled basic block, owned by the predecode cache
// of its physical page (pageInsts.blocks, indexed by starting word
// offset). The guard fields are checked on every entry; gen rides the
// same mem.Page store generation the predecode cache trusts, so any
// store into the page — SMC, program load, injected corruption —
// invalidates the block exactly when it invalidates the decode.
type jitBlock struct {
	gen     uint64    // page.Gen at compile time
	page    *mem.Page // physical identity, for own-page store detection
	startVA uint32    // VA of ops[0] when compiled
	vpn     uint32    // startVA >> PageShift: VA-dependent targets/links
	kmode   bool      // privilege mode at compile time
	counted bool      // fetches went through the TLB: hits must count
	ops     []uop     // nil/empty: sentinel "uncompilable here" marker
}

// compileBlock translates the straight-line run starting at pc (which
// the caller has already resolved through the micro-ITLB entry e) and
// returns the block, which may be an empty sentinel when the first
// instruction is not compilable. Blocks never span a page boundary:
// discovery stops at the end of the physical page, and a branch whose
// delay slot would fall off the page (or is itself a branch, or is
// not compilable) ends the block *before* the branch so the
// interpreter handles the pair with full delay-slot semantics.
func (c *CPU) compileBlock(pc uint32, e *utlbEntry) *jitBlock {
	pg, pi := e.page, e.insts
	b := &jitBlock{
		gen:     pg.Gen(),
		page:    pg,
		startVA: pc,
		vpn:     pc >> arch.PageShift,
		kmode:   c.KernelMode(),
		counted: e.counted,
	}
	w := pc & (arch.PageSize - 1) >> 2
	last := uint32(arch.PageSize / 4)
	va := pc
	for w < last {
		inst := pi.fetch(pg, va)
		op, ok, branch := compileOne(&inst, va)
		if !ok {
			break
		}
		if branch {
			// A branch needs its delay slot inside the block: same
			// page, compilable, and not itself a branch.
			if w+1 >= last {
				break
			}
			dinst := pi.fetch(pg, va+4)
			dop, dok, dbranch := compileOne(&dinst, va+4)
			if !dok || dbranch {
				break
			}
			b.ops = append(b.ops, op, dop)
			return b
		}
		b.ops = append(b.ops, op)
		w++
		va += 4
	}
	return b
}

// compileOne translates a single decoded instruction at va into a µop.
// ok=false means the instruction ends block discovery (system
// instructions, unaligned-word ops, anything that can redirect
// control outside branchTo). branch=true marks block terminators.
//
// Destinations that are architecturally discarded (rd/rt = r0) fold
// to uNop when the op cannot fault — the interpreter writes g[0] and
// re-zeroes it after the step, which is equivalent — and keep a
// run-time rd!=0 guard when side effects (faults, memory access,
// links) must still happen. Keeping the 1:1 op↔instruction mapping
// means the executor can reconstruct any VA as startVA + 4*index.
func compileOne(i *arch.Inst, va uint32) (uop, bool, bool) {
	simm := uint32(i.SImm())
	switch i.Mn {
	// --- shifts ---
	case arch.MnSLL:
		if i.Rd == 0 { // includes the canonical NOP encoding
			return uop{kind: uNop}, true, false
		}
		return uop{kind: uSLL, rd: uint8(i.Rd), rt: uint8(i.Rt), imm: uint32(i.Shamt)}, true, false
	case arch.MnSRL:
		if i.Rd == 0 {
			return uop{kind: uNop}, true, false
		}
		return uop{kind: uSRL, rd: uint8(i.Rd), rt: uint8(i.Rt), imm: uint32(i.Shamt)}, true, false
	case arch.MnSRA:
		if i.Rd == 0 {
			return uop{kind: uNop}, true, false
		}
		return uop{kind: uSRA, rd: uint8(i.Rd), rt: uint8(i.Rt), imm: uint32(i.Shamt)}, true, false
	case arch.MnSLLV, arch.MnSRLV, arch.MnSRAV:
		if i.Rd == 0 {
			return uop{kind: uNop}, true, false
		}
		k := uSLLV
		switch i.Mn {
		case arch.MnSRLV:
			k = uSRLV
		case arch.MnSRAV:
			k = uSRAV
		}
		return uop{kind: k, rd: uint8(i.Rd), rs: uint8(i.Rs), rt: uint8(i.Rt)}, true, false

	// --- hi/lo and multiply/divide ---
	case arch.MnMFHI:
		if i.Rd == 0 {
			return uop{kind: uNop}, true, false
		}
		return uop{kind: uMFHI, rd: uint8(i.Rd)}, true, false
	case arch.MnMTHI:
		return uop{kind: uMTHI, rs: uint8(i.Rs)}, true, false
	case arch.MnMFLO:
		if i.Rd == 0 {
			return uop{kind: uNop}, true, false
		}
		return uop{kind: uMFLO, rd: uint8(i.Rd)}, true, false
	case arch.MnMTLO:
		return uop{kind: uMTLO, rs: uint8(i.Rs)}, true, false
	case arch.MnMULT:
		return uop{kind: uMULT, rs: uint8(i.Rs), rt: uint8(i.Rt)}, true, false
	case arch.MnMULTU:
		return uop{kind: uMULTU, rs: uint8(i.Rs), rt: uint8(i.Rt)}, true, false
	case arch.MnDIV:
		return uop{kind: uDIV, rs: uint8(i.Rs), rt: uint8(i.Rt)}, true, false
	case arch.MnDIVU:
		return uop{kind: uDIVU, rs: uint8(i.Rs), rt: uint8(i.Rt)}, true, false

	// --- three-register ALU ---
	case arch.MnADD:
		return uop{kind: uADD, rd: uint8(i.Rd), rs: uint8(i.Rs), rt: uint8(i.Rt)}, true, false
	case arch.MnSUB:
		return uop{kind: uSUB, rd: uint8(i.Rd), rs: uint8(i.Rs), rt: uint8(i.Rt)}, true, false
	case arch.MnADDU, arch.MnSUBU, arch.MnAND, arch.MnOR, arch.MnXOR,
		arch.MnNOR, arch.MnSLT, arch.MnSLTU:
		if i.Rd == 0 {
			return uop{kind: uNop}, true, false
		}
		var k uint8
		switch i.Mn {
		case arch.MnADDU:
			k = uADDU
		case arch.MnSUBU:
			k = uSUBU
		case arch.MnAND:
			k = uAND
		case arch.MnOR:
			k = uOR
		case arch.MnXOR:
			k = uXOR
		case arch.MnNOR:
			k = uNOR
		case arch.MnSLT:
			k = uSLT
		default:
			k = uSLTU
		}
		return uop{kind: k, rd: uint8(i.Rd), rs: uint8(i.Rs), rt: uint8(i.Rt)}, true, false

	// --- immediate ALU ---
	case arch.MnADDI:
		return uop{kind: uADDI, rd: uint8(i.Rt), rs: uint8(i.Rs), imm: simm}, true, false
	case arch.MnADDIU, arch.MnSLTI, arch.MnSLTIU:
		if i.Rt == 0 {
			return uop{kind: uNop}, true, false
		}
		k := uADDIU
		switch i.Mn {
		case arch.MnSLTI:
			k = uSLTI
		case arch.MnSLTIU:
			k = uSLTIU
		}
		return uop{kind: k, rd: uint8(i.Rt), rs: uint8(i.Rs), imm: simm}, true, false
	case arch.MnANDI, arch.MnORI, arch.MnXORI:
		if i.Rt == 0 {
			return uop{kind: uNop}, true, false
		}
		k := uANDI
		switch i.Mn {
		case arch.MnORI:
			k = uORI
		case arch.MnXORI:
			k = uXORI
		}
		return uop{kind: k, rd: uint8(i.Rt), rs: uint8(i.Rs), imm: uint32(i.Imm)}, true, false
	case arch.MnLUI:
		if i.Rt == 0 {
			return uop{kind: uNop}, true, false
		}
		return uop{kind: uLUI, rd: uint8(i.Rt), imm: uint32(i.Imm) << 16}, true, false

	// --- exception-register moves ---
	case arch.MnMFXT, arch.MnMFXC, arch.MnMFXB:
		if i.Rd == 0 {
			return uop{kind: uNop}, true, false
		}
		k := uMFXT
		switch i.Mn {
		case arch.MnMFXC:
			k = uMFXC
		case arch.MnMFXB:
			k = uMFXB
		}
		return uop{kind: k, rd: uint8(i.Rd)}, true, false
	case arch.MnMTXT:
		return uop{kind: uMTXT, rs: uint8(i.Rs)}, true, false

	// --- loads/stores ---
	case arch.MnLB, arch.MnLBU, arch.MnLH, arch.MnLHU, arch.MnLW:
		var k uint8
		switch i.Mn {
		case arch.MnLB:
			k = uLB
		case arch.MnLBU:
			k = uLBU
		case arch.MnLH:
			k = uLH
		case arch.MnLHU:
			k = uLHU
		default:
			k = uLW
		}
		return uop{kind: k, rd: uint8(i.Rt), rs: uint8(i.Rs), imm: simm}, true, false
	case arch.MnSB, arch.MnSH, arch.MnSW:
		k := uSB
		switch i.Mn {
		case arch.MnSH:
			k = uSH
		case arch.MnSW:
			k = uSW
		}
		return uop{kind: k, rs: uint8(i.Rs), rt: uint8(i.Rt), imm: simm}, true, false

	// --- terminators ---
	case arch.MnJ:
		return uop{kind: uJ, imm: arch.JumpTarget(va, i.Target)}, true, true
	case arch.MnJAL:
		return uop{kind: uJAL, imm: arch.JumpTarget(va, i.Target)}, true, true
	case arch.MnJR:
		return uop{kind: uJR, rs: uint8(i.Rs)}, true, true
	case arch.MnJALR:
		return uop{kind: uJALR, rd: uint8(i.Rd), rs: uint8(i.Rs)}, true, true
	case arch.MnBEQ, arch.MnBNE:
		k := uBEQ
		if i.Mn == arch.MnBNE {
			k = uBNE
		}
		return uop{kind: k, rs: uint8(i.Rs), rt: uint8(i.Rt), imm: arch.BranchTarget(va, i.Imm)}, true, true
	case arch.MnBLEZ, arch.MnBGTZ, arch.MnBLTZ, arch.MnBGEZ,
		arch.MnBLTZAL, arch.MnBGEZAL:
		var k uint8
		switch i.Mn {
		case arch.MnBLEZ:
			k = uBLEZ
		case arch.MnBGTZ:
			k = uBGTZ
		case arch.MnBLTZ:
			k = uBLTZ
		case arch.MnBGEZ:
			k = uBGEZ
		case arch.MnBLTZAL:
			k = uBLTZAL
		default:
			k = uBGEZAL
		}
		return uop{kind: k, rs: uint8(i.Rs), imm: arch.BranchTarget(va, i.Imm)}, true, true
	}

	// Everything else — SYSCALL/BREAK, CP0 and TLB management, RFE,
	// HCALL, XRET, UTLBMOD, the unaligned LWL/LWR/SWL/SWR family, and
	// invalid encodings — stays interpreter-only.
	return uop{}, false, false
}
