package cpu

import (
	"testing"
	"testing/quick"

	"uexc/internal/arch"
)

// aluMachine executes single instructions against a Go reference model.
type aluMachine struct {
	tm *testMachine
}

func newALUMachine(t *testing.T) *aluMachine {
	tm := newTestMachine(t)
	// A code page in kseg0 we rewrite per instruction.
	return &aluMachine{tm: tm}
}

// exec1 runs one R-type/I-type instruction with the given source
// register values and returns the destination value.
func (a *aluMachine) exec1(t *testing.T, inst arch.Inst, rsVal, rtVal uint32) (uint32, bool) {
	t.Helper()
	c := a.tm.c
	c.Reset()
	const codePA = 0x3000
	if err := a.tm.m.StoreWord(codePA, arch.Encode(inst)); err != nil {
		t.Fatal(err)
	}
	c.PC = arch.KSeg0Base + codePA
	c.NPC = c.PC + 4
	c.GPR[inst.Rs] = rsVal
	c.GPR[inst.Rt] = rtVal
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	// Exception (e.g. overflow) redirects PC to a vector.
	if c.PC != arch.KSeg0Base+codePA+4 && c.PC != arch.KSeg0Base+codePA+8 {
		return 0, false
	}
	return c.GPR[inst.Rd], true
}

func TestALUAgainstReference(t *testing.T) {
	a := newALUMachine(t)
	type refFn func(x, y uint32) (uint32, bool) // result, no-exception
	cases := []struct {
		mn  arch.Mn
		ref refFn
	}{
		{arch.MnADDU, func(x, y uint32) (uint32, bool) { return x + y, true }},
		{arch.MnSUBU, func(x, y uint32) (uint32, bool) { return x - y, true }},
		{arch.MnAND, func(x, y uint32) (uint32, bool) { return x & y, true }},
		{arch.MnOR, func(x, y uint32) (uint32, bool) { return x | y, true }},
		{arch.MnXOR, func(x, y uint32) (uint32, bool) { return x ^ y, true }},
		{arch.MnNOR, func(x, y uint32) (uint32, bool) { return ^(x | y), true }},
		{arch.MnSLT, func(x, y uint32) (uint32, bool) {
			if int32(x) < int32(y) {
				return 1, true
			}
			return 0, true
		}},
		{arch.MnSLTU, func(x, y uint32) (uint32, bool) {
			if x < y {
				return 1, true
			}
			return 0, true
		}},
		{arch.MnADD, func(x, y uint32) (uint32, bool) {
			s := int64(int32(x)) + int64(int32(y))
			if s > 0x7fffffff || s < -0x80000000 {
				return 0, false
			}
			return uint32(s), true
		}},
		{arch.MnSUB, func(x, y uint32) (uint32, bool) {
			s := int64(int32(x)) - int64(int32(y))
			if s > 0x7fffffff || s < -0x80000000 {
				return 0, false
			}
			return uint32(s), true
		}},
		{arch.MnSLLV, func(x, y uint32) (uint32, bool) { return y << (x & 31), true }},
		{arch.MnSRLV, func(x, y uint32) (uint32, bool) { return y >> (x & 31), true }},
		{arch.MnSRAV, func(x, y uint32) (uint32, bool) { return uint32(int32(y) >> (x & 31)), true }},
	}
	for _, c := range cases {
		c := c
		f := func(x, y uint32) bool {
			inst := arch.Inst{Mn: c.mn, Rd: arch.RegV0, Rs: arch.RegA0, Rt: arch.RegA1}
			got, okGot := a.exec1(t, inst, x, y)
			want, okWant := c.ref(x, y)
			if okGot != okWant {
				t.Logf("%s(%#x, %#x): exception mismatch got ok=%v want ok=%v", c.mn.Name(), x, y, okGot, okWant)
				return false
			}
			return !okGot || got == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", c.mn.Name(), err)
		}
	}
}

func TestShiftImmediates(t *testing.T) {
	a := newALUMachine(t)
	f := func(v uint32, sa uint8) bool {
		sa &= 31
		sll, ok1 := a.exec1(t, arch.Inst{Mn: arch.MnSLL, Rd: arch.RegV0, Rt: arch.RegA1, Shamt: sa}, 0, v)
		srl, ok2 := a.exec1(t, arch.Inst{Mn: arch.MnSRL, Rd: arch.RegV0, Rt: arch.RegA1, Shamt: sa}, 0, v)
		sra, ok3 := a.exec1(t, arch.Inst{Mn: arch.MnSRA, Rd: arch.RegV0, Rt: arch.RegA1, Shamt: sa}, 0, v)
		return ok1 && ok2 && ok3 &&
			sll == v<<sa && srl == v>>sa && sra == uint32(int32(v)>>sa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestImmediateOpsAgainstReference(t *testing.T) {
	a := newALUMachine(t)
	f := func(x uint32, imm uint16) bool {
		se := uint32(int32(int16(imm)))
		checks := []struct {
			mn   arch.Mn
			want uint32
		}{
			{arch.MnADDIU, x + se},
			{arch.MnANDI, x & uint32(imm)},
			{arch.MnORI, x | uint32(imm)},
			{arch.MnXORI, x ^ uint32(imm)},
			{arch.MnSLTIU, b2u(x < se)},
			{arch.MnSLTI, b2u(int32(x) < int32(se))},
		}
		for _, c := range checks {
			inst := arch.Inst{Mn: c.mn, Rt: arch.RegV0, Rs: arch.RegA0, Imm: imm}
			// I-format writes Rt; exec1 reads Rd, so read v0 directly.
			cpu := a.tm.c
			cpu.Reset()
			const codePA = 0x3000
			if err := a.tm.m.StoreWord(codePA, arch.Encode(inst)); err != nil {
				return false
			}
			cpu.PC = arch.KSeg0Base + codePA
			cpu.NPC = cpu.PC + 4
			cpu.GPR[arch.RegA0] = x
			if err := cpu.Step(); err != nil {
				return false
			}
			if cpu.GPR[arch.RegV0] != c.want {
				t.Logf("%s(%#x, %#x) = %#x, want %#x", c.mn.Name(), x, imm, cpu.GPR[arch.RegV0], c.want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMultDivAgainstReference(t *testing.T) {
	tmach := newTestMachine(t)
	c := tmach.c
	run2 := func(mn arch.Mn, x, y uint32) (uint32, uint32) {
		c.Reset()
		const codePA = 0x3000
		if err := tmach.m.StoreWord(codePA, arch.Encode(arch.Inst{Mn: mn, Rs: arch.RegA0, Rt: arch.RegA1})); err != nil {
			t.Fatal(err)
		}
		c.PC = arch.KSeg0Base + codePA
		c.NPC = c.PC + 4
		c.GPR[arch.RegA0] = x
		c.GPR[arch.RegA1] = y
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		return c.LO, c.HI
	}
	f := func(x, y uint32) bool {
		lo, hi := run2(arch.MnMULT, x, y)
		p := int64(int32(x)) * int64(int32(y))
		if lo != uint32(p) || hi != uint32(p>>32) {
			return false
		}
		lo, hi = run2(arch.MnMULTU, x, y)
		q := uint64(x) * uint64(y)
		if lo != uint32(q) || hi != uint32(q>>32) {
			return false
		}
		if y != 0 {
			lo, hi = run2(arch.MnDIVU, x, y)
			if lo != x/y || hi != x%y {
				return false
			}
			if !(int32(x) == -0x80000000 && int32(y) == -1) { // overflowing quotient: unpredictable
				lo, hi = run2(arch.MnDIV, x, y)
				if int32(lo) != int32(x)/int32(y) || int32(hi) != int32(x)%int32(y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJumpToUnalignedAddressFaultsOnFetch(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80000080
		mfc0 v0, c0_cause
		hcall 1
		mfc0 v0, c0_badvaddr
		hcall 2
		hcall 0
		.org 0x80002000
start:
		li   t0, 0x80002102   # unaligned target
		jr   t0
		nop
	`)
	tm.run(p, 100)
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcAdEL {
		t.Errorf("cause = %#x, want AdEL", r.v0)
	}
}

func TestBLTZALLinksEvenWhenNotTaken(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80002000
start:
		li   t0, 5
linkpc:
		bltzal t0, target     # not taken (5 >= 0), but ra is written
		nop
		move v0, ra
		hcall 1
		hcall 0
target:
		hcall 2
		hcall 0
	`)
	tm.run(p, 100)
	if r := tm.record(1); r.v0 != p.MustSymbol("linkpc")+8 {
		t.Errorf("ra = %#x, want %#x", r.v0, p.MustSymbol("linkpc")+8)
	}
	for _, r := range tm.hcalls {
		if r.code == 2 {
			t.Error("not-taken bltzal branched")
		}
	}
}

func TestDivideByZeroDoesNotTrap(t *testing.T) {
	// MIPS div by zero is UNPREDICTABLE but must not trap; we define 0.
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80002000
start:
		li   t0, 42
		li   t1, 0
		divu t0, t1
		mflo v0
		hcall 1
		hcall 0
	`)
	tm.run(p, 100)
	if r := tm.record(1); r.v0 != 0 {
		t.Errorf("div-by-zero lo = %d", r.v0)
	}
	if tm.c.ExcCounts[arch.ExcOv] != 0 {
		t.Error("div by zero trapped")
	}
}
