package cpu

import (
	"errors"
	"testing"

	"uexc/internal/mem"
	"uexc/internal/tlb"
)

// TestDebugGuardFetchPause: a fetch guard pauses the CPU before the
// instruction has any architectural effect — no fetch, no retire, no
// accounting — and a guard-lifted step retires it exactly as if the
// debugger had never been attached.
func TestDebugGuardFetchPause(t *testing.T) {
	tm := newTortureMachine(t, false)
	g := NewDebugGuard()
	tm.c.Debug = g
	g.GuardPage(tm.c.PC, DebugFetch)

	pc, insts, cycles := tm.c.PC, tm.c.Insts, tm.c.Cycles
	if err := tm.c.Step(); err != nil {
		t.Fatalf("paused step returned error: %v", err)
	}
	if !tm.c.Halted || g.Hit == nil {
		t.Fatalf("guarded fetch did not pause (halted=%v hit=%v)", tm.c.Halted, g.Hit)
	}
	if g.Hit.PC != pc || g.Hit.VA != pc || g.Hit.Access != DebugFetch {
		t.Fatalf("hit = %+v, want pc=va=%#x access=fetch", *g.Hit, pc)
	}
	if tm.c.PC != pc || tm.c.Insts != insts || tm.c.Cycles != cycles {
		t.Fatalf("pause had architectural effect: pc=%#x insts=%d cycles=%d", tm.c.PC, tm.c.Insts, tm.c.Cycles)
	}

	// Step over with the guard lifted: the instruction retires normally.
	g.Hit = nil
	tm.c.Halted = false
	tm.c.Debug = nil
	if err := tm.c.Step(); err != nil {
		t.Fatal(err)
	}
	if tm.c.Insts != insts+1 {
		t.Fatalf("guard-lifted step retired %d insts, want 1", tm.c.Insts-insts)
	}
	// Re-attached, the next fetch from the same page pauses again.
	tm.c.Debug = g
	if err := tm.c.Step(); err != nil {
		t.Fatal(err)
	}
	if !tm.c.Halted || g.Hit == nil || g.Hit.PC != pc+4 {
		t.Fatalf("re-attached guard did not pause at %#x", pc+4)
	}
}

// TestDebugGuardDataWatch: a store-only guard on a data page lets loads
// from the page through and pauses exactly at the first store, before
// the store happens.
func TestDebugGuardDataWatch(t *testing.T) {
	tm := newTortureMachine(t, false)
	g := NewDebugGuard()
	tm.c.Debug = g
	g.GuardPage(0x10000, DebugStore)

	if _, err := tm.c.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if g.Hit == nil {
		t.Fatal("store watch never fired")
	}
	// The loop body loads 0(s1) first — store-only guards must not trap
	// it — then pauses at `sw s0, 8(s1)`.
	if g.Hit.VA != 0x10008 || g.Hit.Access != DebugStore {
		t.Fatalf("hit = %+v, want va=0x10008 access=store", *g.Hit)
	}
	writes := tm.c.MemWrites

	// Step over the paused store with the guard lifted, then resume:
	// the next pause is the same store one iteration later (the stores
	// to page 0x11000 are unguarded).
	g.Hit = nil
	tm.c.Halted = false
	tm.c.Debug = nil
	if err := tm.c.Step(); err != nil {
		t.Fatal(err)
	}
	if tm.c.MemWrites != writes+1 {
		t.Fatal("stepped-over store did not retire")
	}
	tm.c.Debug = g
	if _, err := tm.c.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if g.Hit == nil || g.Hit.VA != 0x10018 {
		t.Fatalf("second pause = %+v, want va=0x10018", g.Hit)
	}
}

// TestDebugGuardUnguardDrain: unguarding drains access bits and deletes
// the page entry when the last bit goes.
func TestDebugGuardUnguardDrain(t *testing.T) {
	g := NewDebugGuard()
	g.GuardPage(0x10000, DebugLoad|DebugStore)
	g.GuardPage(0x4000, DebugFetch)
	if n := g.GuardedPages(); n != 2 {
		t.Fatalf("guarded pages = %d, want 2", n)
	}
	g.UnguardPage(0x10004, DebugLoad) // same page, any offset
	if n := g.GuardedPages(); n != 2 {
		t.Fatalf("partial unguard dropped the page (pages=%d)", n)
	}
	g.UnguardPage(0x10000, DebugStore)
	if n := g.GuardedPages(); n != 1 {
		t.Fatalf("drained page not deleted (pages=%d)", n)
	}
	g.UnguardPage(0x4000, DebugFetch)
	if n := g.GuardedPages(); n != 0 {
		t.Fatalf("guard table not empty (pages=%d)", n)
	}
}

// TestDebugGuardJITStandDown: while a guard table is attached the JIT
// tier refuses to run (every instruction must pass the Step-level
// checks); detaching re-enables it.
func TestDebugGuardJITStandDown(t *testing.T) {
	tm := newTortureMachine(t, false)
	tm.c.Engine = EngineJIT
	tm.c.Debug = NewDebugGuard() // empty: never fires, but must gate the JIT

	var be *BudgetError
	if _, err := tm.c.Run(5_000); !errors.As(err, &be) {
		t.Fatalf("run: %v", err)
	}
	if tm.c.JITExecs != 0 {
		t.Fatalf("JIT retired %d blocks with a guard attached", tm.c.JITExecs)
	}
	tm.c.Debug = nil
	if _, err := tm.c.Run(5_000); !errors.As(err, &be) {
		t.Fatalf("run: %v", err)
	}
	if tm.c.JITExecs == 0 {
		t.Fatal("JIT never re-engaged after detach")
	}
}

// TestEngineToggleTortureSnapshotRestore extends the engine-toggle
// lockstep torture with snapshot/restore points: both machines are
// periodically captured (CPU+TLB+memory) and later rewound to the
// capture, which must be engine-exact — the restored digest equals the
// captured digest bit-for-bit, and lockstep continues through the full
// mutation schedule, including a self-modifying-code store issued
// immediately after each restore so stale predecode/JIT state keyed to
// pre-restore page generations would be caught at once.
func TestEngineToggleTortureSnapshotRestore(t *testing.T) {
	tog := newTortureMachine(t, false)
	ref := newTortureMachine(t, true)

	type point struct {
		mem    *mem.MemState
		tlb    *tlb.State
		cpu    *State
		digest string
	}
	capture := func(tm *tortureMachine) point {
		return point{tm.m.CaptureState(), tm.tl.CaptureState(), tm.c.CaptureState(), tm.snapshot()}
	}
	restore := func(tm *tortureMachine, p point) {
		t.Helper()
		if _, err := tm.m.RestoreState(p.mem); err != nil {
			t.Fatalf("mem restore: %v", err)
		}
		tm.tl.RestoreState(p.tlb)
		tm.c.RestoreState(p.cpu)
	}

	type pair struct{ tog, ref point }
	var snap *pair
	restores := 0

	engines := []Engine{EngineJIT, EngineFast, EngineInterp}
	rng := uint32(0x2545f491)
	const chunk = 97
	for r := uint32(0); r < 400; r++ {
		rng = rng*1664525 + 1013904223
		tog.c.Engine = engines[rng>>16%3]
		for _, tm := range []*tortureMachine{tog, ref} {
			_, err := tm.c.Run(chunk)
			var be *BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("round %d: run ended: %v (pc=%#x)", r, err, tm.c.PC)
			}
		}
		if f, s := tog.snapshot(), ref.snapshot(); f != s {
			t.Fatalf("round %d: divergence\ntoggled: %s\nref:     %s", r, f, s)
		}

		switch {
		case r%101 == 13:
			snap = &pair{tog: capture(tog), ref: capture(ref)}
		case r%101 == 60 && snap != nil:
			restore(tog, snap.tog)
			restore(ref, snap.ref)
			restores++
			if got := tog.snapshot(); got != snap.tog.digest {
				t.Fatalf("round %d: restore not engine-exact\ngot:  %s\nwant: %s", r, got, snap.tog.digest)
			}
			if got := ref.snapshot(); got != snap.ref.digest {
				t.Fatalf("round %d: reference restore drifted\ngot:  %s\nwant: %s", r, got, snap.ref.digest)
			}
			// SMC in the very first post-restore instant: the restored
			// code page's generation must already have advanced past
			// every cached decode/translation.
			for _, tm := range []*tortureMachine{tog, ref} {
				pg := tm.m.PageRef(tm.smcPA)
				pg.SetWord(tm.smcPA, pg.Word(tm.smcPA)^(1<<16))
			}
		}
		tog.tortureMutate(r)
		ref.tortureMutate(r)
	}
	if restores < 3 {
		t.Fatalf("schedule exercised only %d restores", restores)
	}
	if tog.c.JITExecs == 0 {
		t.Error("toggle schedule never retired a translated block")
	}
	if tog.c.GPR[22] == 0 { // s6: exception count
		t.Error("torture schedule provoked no exceptions")
	}
}
