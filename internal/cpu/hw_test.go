package cpu

import (
	"testing"
	"testing/quick"

	"uexc/internal/arch"
	"uexc/internal/tlb"
)

// TestLWRLWLComposeUnalignedLoad checks the canonical little-endian
// unaligned-load sequence (lwr rt, 0(a); lwl rt, 3(a)) against a direct
// byte-wise read, for every alignment.
func TestLWRLWLComposeUnalignedLoad(t *testing.T) {
	f := func(off uint8, b0, b1, b2, b3, b4, b5, b6, b7 uint8) bool {
		tm := newTestMachine(t)
		p := tm.load(`
		.org 0x80002000
start:
		la   t0, buf
		addiu t0, t0, ` + string('0'+off%5) + `
		lwr  v0, 0(t0)
		lwl  v0, 3(t0)
		hcall 1
		hcall 0
		.align 8
buf:	.space 16
	`)
		base := arch.KSegPhys(p.MustSymbol("buf"))
		bytes := []uint8{b0, b1, b2, b3, b4, b5, b6, b7}
		for i, v := range bytes {
			if err := tm.m.StoreByte(base+uint32(i), v); err != nil {
				return false
			}
		}
		tm.run(p, 100)
		a := int(off % 5)
		want := uint32(bytes[a]) | uint32(bytes[a+1])<<8 |
			uint32(bytes[a+2])<<16 | uint32(bytes[a+3])<<24
		return tm.record(1).v0 == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSWRSWLComposeUnalignedStore checks the unaligned-store sequence
// (swr rt, 0(a); swl rt, 3(a)).
func TestSWRSWLComposeUnalignedStore(t *testing.T) {
	for off := uint32(0); off < 4; off++ {
		tm := newTestMachine(t)
		p := tm.load(`
		.org 0x80002000
start:
		la   t0, buf
		addiu t0, t0, ` + string('0'+byte(off)) + `
		li   t1, 0xa1b2c3d4
		swr  t1, 0(t0)
		swl  t1, 3(t0)
		hcall 0
		.align 8
buf:	.word 0x11111111, 0x22222222, 0x33333333
	`)
		tm.run(p, 100)
		base := arch.KSegPhys(p.MustSymbol("buf"))
		// Read back byte-wise and verify the 4 bytes at base+off.
		want := []uint8{0xd4, 0xc3, 0xb2, 0xa1}
		for i, w := range want {
			got, _ := tm.m.LoadByte(base + off + uint32(i))
			if got != w {
				t.Errorf("off=%d byte %d = %#x, want %#x", off, i, got, w)
			}
		}
		// Bytes outside the stored window must be untouched.
		if off > 0 {
			got, _ := tm.m.LoadByte(base + off - 1)
			if got != 0x11 {
				t.Errorf("off=%d preceding byte clobbered: %#x", off, got)
			}
		}
		got, _ := tm.m.LoadByte(base + off + 4)
		wantAfter := uint8(0x22)
		if off+4 < 4 {
			wantAfter = 0x11
		} else if off+4 >= 8 {
			wantAfter = 0x33
		}
		if got != wantAfter {
			t.Errorf("off=%d following byte clobbered: %#x want %#x", off, got, wantAfter)
		}
	}
}

// teraHarness boots, claims AdEL and Bp for direct user delivery, maps
// the user program, and drops to user mode.
const teraHarness = `
		.org 0x80000080
		mfc0 v0, c0_cause
		hcall 1              # kernel saw the exception
		hcall 0

		.org 0x80001000
start:
		la   k0, user
		mtc0 k0, c0_epc
		mfc0 t0, c0_status
		ori  t0, t0, 0x8
		mtc0 t0, c0_status
		mfc0 k0, c0_epc
		jr   k0
		rfe
`

func enableTera(tm *testMachine, codes ...uint32) {
	tm.c.TeraMode = true
	for _, code := range codes {
		tm.c.UserVector |= 1 << code
	}
}

func TestTeraModeDeliversToUserHandler(t *testing.T) {
	tm := newTestMachine(t)
	enableTera(tm, arch.ExcBp)
	p := tm.load(teraHarness + `
		.org 0x4000
user:
		la   t0, handler
		mtxt t0              # load exception-target register
		li   v0, 0
faulting:
		break                # delivered directly to handler
		addiu v0, v0, 1      # resumed here after handler advances XT
		syscall              # back to kernel (not claimed): record & halt

handler:
		mfxc t1              # condition register has the cause
		mfxt t2              # XT now holds the faulting PC
		addiu t2, t2, 4      # skip the break
		mtxt t2
		addiu v0, v0, 10
		xret                 # exchange back
	`)
	tm.run(p, 300)
	// The syscall (unclaimed) lands in the kernel: v0 recorded there.
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcSys {
		t.Fatalf("final kernel entry cause = %#x, want Sys", r.v0)
	}
	if got := tm.c.GPR[arch.RegV0]; got>>arch.CauseExcShift&31 != arch.ExcSys {
		_ = got // v0 was overwritten by the vector stub; check t-regs instead
	}
	// Handler must have run exactly once and resumed after break:
	// v0 = 0 + 10 (handler) + 1 (resume) = 11 at syscall time.
	// The vector stub clobbers v0, so check the recorded a0... instead
	// re-derive: t1 held XC.
	if xc := tm.c.GPR[arch.RegT1]; xc>>arch.CauseExcShift&31 != arch.ExcBp {
		t.Errorf("XC in handler = %#x, want Bp code", xc)
	}
	if tm.c.ExcCounts[arch.ExcBp] != 1 {
		t.Errorf("Bp exceptions = %d, want 1", tm.c.ExcCounts[arch.ExcBp])
	}
	// The kernel must NOT have seen the breakpoint.
	for _, r := range tm.hcalls {
		if r.code == 1 && r.v0>>arch.CauseExcShift&31 == arch.ExcBp {
			t.Error("breakpoint reached the kernel despite Tera mode")
		}
	}
}

func TestTeraModeRecursionFallsBackToKernel(t *testing.T) {
	tm := newTestMachine(t)
	enableTera(tm, arch.ExcBp)
	p := tm.load(teraHarness + `
		.org 0x4000
user:
		la   t0, handler
		mtxt t0
		break               # first: direct to handler
		nop
		syscall
handler:
		break               # second, with UEX set: must go to kernel
		nop
	`)
	tm.run(p, 300)
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcBp {
		t.Fatalf("kernel cause = %#x, want Bp (recursive)", r.v0)
	}
	if tm.c.ExcCounts[arch.ExcBp] != 2 {
		t.Errorf("Bp count = %d, want 2", tm.c.ExcCounts[arch.ExcBp])
	}
}

func TestTeraModeUnclaimedExceptionGoesToKernel(t *testing.T) {
	tm := newTestMachine(t)
	enableTera(tm, arch.ExcAdEL) // claim only unaligned loads
	p := tm.load(teraHarness + `
		.org 0x4000
user:
		la   t0, handler
		mtxt t0
		break               # NOT claimed: kernel path
		nop
handler:
		xret
	`)
	tm.run(p, 300)
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcBp {
		t.Fatalf("kernel cause = %#x, want Bp", r.v0)
	}
}

func TestXRETClearsUEXAllowingRedelivery(t *testing.T) {
	tm := newTestMachine(t)
	enableTera(tm, arch.ExcBp)
	// Canonical Tera return idiom: the exchange sits immediately before
	// the handler entry, so returning re-loads XT with the handler
	// address (XT gets "address after xret" == handler).
	p := tm.load(teraHarness + `
		.org 0x4000
user:
		la   t0, handler
		mtxt t0
		li   s0, 0
		break
		nop
		break               # after xret, UEX clear: direct again
		nop
		syscall

ret:	xret                # executing this returns; XT := ret+4 = handler
handler:
		addiu s0, s0, 1
		mfxt t2
		addiu t2, t2, 4
		mtxt t2
		b    ret
		nop
	`)
	tm.run(p, 400)
	if got := tm.c.GPR[arch.RegS0]; got != 2 {
		t.Errorf("handler ran %d times, want 2", got)
	}
}

func TestUTLBModUserAmplifyWithUBit(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(enterUserHarness + `
		.org 0x4000
user:
		li   t0, 0x00600000
		li   t1, 3           # writable | valid
		utlbmod t0, t1       # permitted: U bit set below
		sw   t1, 0(t0)       # now succeeds
		lw   v0, 0(t0)
		syscall              # report via kernel (cause Sys)
		nop
	`)
	// Map 0x600000 clean + U bit.
	tm.tl.WriteIndexed(9, tlb.Entry{
		Hi: tlb.MakeHi(0x600, 0), Lo: tlb.MakeLo(0x600, tlb.LoV|tlb.LoU),
	})
	tm.run(p, 300)
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcSys {
		t.Fatalf("cause = %#x, want Sys (store should have succeeded)", r.v0)
	}
	w, _ := tm.m.LoadWord(0x00600000)
	if w != 3 {
		t.Errorf("stored word = %d, want 3", w)
	}
}

func TestUTLBModWithoutUBitFaults(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(enterUserHarness + `
		.org 0x4000
user:
		li   t0, 0x00600000
		li   t1, 3
		utlbmod t0, t1       # U bit clear: RI
		nop
	`)
	tm.tl.WriteIndexed(9, tlb.Entry{
		Hi: tlb.MakeHi(0x600, 0), Lo: tlb.MakeLo(0x600, tlb.LoV),
	})
	tm.run(p, 300)
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcRI {
		t.Errorf("cause = %#x, want RI", r.v0)
	}
	if tm.tl.Read(9).Writable() {
		t.Error("protection was modified despite missing U bit")
	}
}

func TestUTLBModMissingEntryFaults(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(enterUserHarness + `
		.org 0x4000
user:
		li   t0, 0x00700000  # unmapped
		li   t1, 3
		utlbmod t0, t1
		nop
	`)
	tm.run(p, 300)
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcRI {
		t.Errorf("cause = %#x, want RI", r.v0)
	}
}

func TestUTLBModRestrictsProtection(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(enterUserHarness + `
		.org 0x4000
user:
		li   t0, 0x00600000
		li   t1, 2           # valid, NOT writable
		utlbmod t0, t1       # restrict: remove write
		sw   t1, 0(t0)       # now faults with Mod
		nop
	`)
	tm.tl.WriteIndexed(9, tlb.Entry{
		Hi: tlb.MakeHi(0x600, 0), Lo: tlb.MakeLo(0x600, tlb.LoV|tlb.LoD|tlb.LoU),
	})
	tm.run(p, 300)
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcMod {
		t.Errorf("cause = %#x, want Mod", r.v0)
	}
}

func TestRaiseExternal(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80000080
		mfc0 v0, c0_cause
		hcall 1
		mfc0 v0, c0_badvaddr
		hcall 2
		mfc0 v0, c0_epc
		hcall 3
		hcall 0
		.org 0x80002000
start:
		hcall 0
	`)
	tm.c.PC = p.MustSymbol("start")
	tm.c.NPC = tm.c.PC + 4
	tm.c.RaiseExternal(arch.ExcMod, 0x1234, 0x4000, false)
	if _, err := tm.c.Run(100); err != nil {
		t.Fatal(err)
	}
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcMod {
		t.Errorf("cause = %#x", r.v0)
	}
	if r := tm.record(2); r.v0 != 0x1234 {
		t.Errorf("badvaddr = %#x", r.v0)
	}
	if r := tm.record(3); r.v0 != 0x4000 {
		t.Errorf("epc = %#x", r.v0)
	}
}

// TestTeraModeSecondConditionRegister: the paper's Tera description has
// two condition registers; the second (XB) carries the faulting address
// so user handlers of address-class exceptions need no kernel help.
func TestTeraModeSecondConditionRegister(t *testing.T) {
	tm := newTestMachine(t)
	enableTera(tm, arch.ExcAdEL)
	p := tm.load(teraHarness + `
		.org 0x4000
user:
		la   t0, handler
		mtxt t0
		li   t4, 0x4203          # odd address
		lw   t5, 0(t4)           # AdEL, direct user delivery
		nop
		syscall
handler:
		mfxb s0                  # second condition register: bad address
		mfxc s1
		mfxt t2
		addiu t2, t2, 4
		mtxt t2
		xret
	`)
	tm.run(p, 300)
	if got := tm.c.GPR[arch.RegS0]; got != 0x4203 {
		t.Errorf("XB = %#x, want 0x4203", got)
	}
	if got := tm.c.GPR[arch.RegS1] >> arch.CauseExcShift & 31; got != arch.ExcAdEL {
		t.Errorf("XC code = %d, want AdEL", got)
	}
}

// TestFixedAddressVectoring: §2.2's alternative hardware design — the
// exception vectors to a fixed, architecturally-defined user address
// instead of the exception-target register's contents; the cost and the
// return path are identical.
func TestFixedAddressVectoring(t *testing.T) {
	tm := newTestMachine(t)
	enableTera(tm, arch.ExcBp)
	p := tm.load(teraHarness + `
		.org 0x4000
user:
		li   s0, 0
		break                # vectors to the FIXED address below
		nop
		syscall

		.org 0x5000          # the architecturally-defined vector
fixed_handler:
		addiu s0, s0, 1
		mfxt t2              # XT still holds the faulting PC
		addiu t2, t2, 4
		mtxt t2
		xret
	`)
	tm.c.FixedVector = p.MustSymbol("fixed_handler")
	tm.run(p, 300)
	if got := tm.c.GPR[arch.RegS0]; got != 1 {
		t.Errorf("fixed handler ran %d times, want 1", got)
	}
	// No XT setup was ever executed by user code; delivery came from
	// the fixed address alone.
	for _, r := range tm.hcalls {
		if r.code == 1 && r.v0>>arch.CauseExcShift&31 == arch.ExcBp {
			t.Error("breakpoint reached the kernel")
		}
	}
}

// TestFixedVectorCostEqualsExchangeCost: the paper judges the choice
// between the two delivery specifications cost-irrelevant; verify.
func TestFixedVectorCostEqualsExchangeCost(t *testing.T) {
	run := func(fixed bool) uint64 {
		tm := newTestMachine(t)
		enableTera(tm, arch.ExcBp)
		p := tm.load(teraHarness + `
		.org 0x4000
user:
		la   t0, handler
		mtxt t0
		break
		nop
		syscall
		.org 0x5000
handler:
		mfxt t2
		addiu t2, t2, 4
		mtxt t2
		xret
	`)
		if fixed {
			tm.c.FixedVector = p.MustSymbol("handler")
		}
		start := tm.c.Cycles
		tm.run(p, 300)
		return tm.c.Cycles - start
	}
	a, b := run(false), run(true)
	if a != b {
		t.Errorf("delivery cost differs: exchange %d vs fixed %d cycles", a, b)
	}
}
