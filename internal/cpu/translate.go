package cpu

// The JIT execution tier (DESIGN.md §15): Run dispatches whole
// translated basic blocks (block.go) instead of single interpreter
// steps whenever it can prove the block's execution is byte-for-byte
// equivalent to stepping the interpreter — same architectural state,
// same Insts/Cycles/MemWrites/TLB.Hits accounting, same exception
// points. Anything unprovable falls back to the interpreter:
//
//   - Block entry requires a micro-ITLB hit at a word-aligned PC
//     outside a delay slot; the guard then pins (VPN, kernel mode,
//     counted-ness, mem.Page.Gen). ASID and the Status mode bits are
//     guarded transitively: the micro-ITLB tag is keyed by both, so a
//     hit already proves they match. A moved page generation
//     recompiles (JITInvalidations); any other mismatch recompiles as
//     a guard miss (JITGuardMisses).
//   - Exceptions never happen inside a block. Any op that would fault
//     (overflow, misalignment, a data access the micro-DTLB cannot
//     serve) exits before executing, with PC/NPC/prevWasBranch
//     reconstructed to the exact interpreter state — including the
//     delay-slot case, where EPC arithmetic must see the branch.
//   - Armed hooks disable translation where they could observe a
//     difference: CPU.Inject suppresses the tier entirely unless the
//     injector declared itself kernel-silent (InjectUserOnly), and
//     TLB.InjectMiss is honored for free because the micro-TLBs never
//     serve counted entries while it is armed — kernel text in kseg0
//     (uncounted) keeps JITting, mapped user pages fall back.
//   - A store into the block's own code page completes, then exits
//     the block; the next entry sees the moved generation and
//     recompiles. This is what keeps TestSMCStanzaObservesPatch exact
//     with the tier enabled.
//
// The lockstep torture in fastpath_test.go runs a default-engine
// machine (JIT) against a NoFastPath interpreter for 400 mutation
// rounds comparing full architectural state plus every counted
// statistic; translate_test.go adds the invalidation edge cases.

import "uexc/internal/arch"

// Engine selects the execution tier Run uses. The zero value is the
// JIT so machines built by New (and recycled by ResetAll) default to
// the fastest observationally-identical tier.
type Engine uint8

const (
	// EngineJIT executes translated basic blocks where provably
	// exact, the fast-path interpreter elsewhere.
	EngineJIT Engine = iota
	// EngineFast is the pre-JIT default: the micro-TLB/predecode
	// fast-path interpreter (DESIGN.md §10).
	EngineFast
	// EngineInterp is the uncached reference interpreter, equivalent
	// to NoFastPath=true: every access takes the slow path.
	EngineInterp
)

// DefaultEngine is the tier installed by New and restored by
// ResetAll. Process-wide knobs (uexc-bench -engine) set it once at
// startup, before any machines exist.
var DefaultEngine = EngineJIT

// fastOff reports whether the micro-TLB/predecode fast paths are
// disabled — by the legacy NoFastPath switch or by selecting the
// reference interpreter tier.
func (c *CPU) fastOff() bool { return c.NoFastPath || c.Engine == EngineInterp }

// jitStep tries to execute one translated block at PC, retiring at
// most limit instructions. It reports false — with architectural
// state untouched — when translation cannot be entered here, and the
// caller falls back to one interpreter Step.
func (c *CPU) jitStep(limit uint64) bool {
	// A delay slot's PC/NPC pair is not the fall-through shape blocks
	// are compiled for; CountPCs needs per-instruction PC visibility;
	// an attached debug guard must check every fetch and data address;
	// an armed injector must see every step unless it declared itself
	// a no-op in kernel mode (faultinject's contract) and we are in
	// kernel mode now.
	if c.prevWasBranch || c.NoFastPath || c.CountPCs || c.Debug != nil {
		return false
	}
	if c.Inject != nil && !(c.InjectUserOnly && c.KernelMode()) {
		return false
	}
	pc := c.PC
	if pc&3 != 0 {
		return false
	}
	kmode := c.KernelMode()
	if !kmode && !arch.InKUSeg(pc) {
		return false
	}
	e := c.itlbLookup(pc)
	if e == nil || e.insts == nil {
		return false
	}
	w := pc & (arch.PageSize - 1) >> 2
	b := e.insts.blocks[w]
	if b == nil || b.gen != e.page.Gen() || b.vpn != pc>>arch.PageShift ||
		b.kmode != kmode || b.counted != e.counted {
		if b != nil {
			if b.gen != e.page.Gen() {
				c.JITInvalidations++
			} else {
				c.JITGuardMisses++
			}
		}
		b = c.compileBlock(pc, e)
		e.insts.blocks[w] = b
		c.JITBlocks++
	}
	if len(b.ops) == 0 {
		return false // sentinel: first instruction is interpreter-only
	}
	if c.execBlock(b, limit) == 0 {
		// The first op bailed before retiring anything (fault, or a
		// data access the micro-DTLB couldn't serve). State is
		// untouched — outside a delay slot NPC==PC+4 always — so the
		// interpreter redoes the instruction identically.
		return false
	}
	c.JITExecs++
	return true
}

// execBlock runs b until an exit condition and returns the number of
// instructions retired. All accounting is accumulated locally and
// flushed on every exit path so a bail observes exact interpreter
// accounting: each retired instruction contributes one fetch hit
// (counted pages), one Insts, and Cost.Inst cycles plus its extras;
// the op that bails contributes nothing — the interpreter re-executes
// it from scratch, including its fetch.
//
// The hot loop carries no per-op counter updates: retires are
// recovered as k-deltas (the op array maps 1:1 to instructions), the
// budget stop is a precomputed index, and the delay-slot/block-end
// logic runs only when k crosses that index. Blocks have at most one
// branch, always at len(ops)-2 with its delay slot last, so inDelay
// can only be true at the final op.
func (c *CPU) execBlock(b *jitBlock, limit uint64) uint64 {
	g := &c.GPR
	ops := b.ops
	nops := len(ops)
	// n counts instructions retired in completed segments; extra holds
	// cycles beyond the per-instruction base cost (loads/stores,
	// mult/div); dataHits are counted data micro-TLB hits.
	var n, extra, writes, dataHits uint64
	// With no watchdog attached, a self-loop (a taken branch back to
	// the block's own head) re-enters without leaving execBlock. With
	// a watchdog, every block pass returns to Run so Observe sees the
	// machine at block granularity.
	selfLoop := c.Watchdog == nil
	k, k0 := 0, 0
	inDelay := false   // the op at nops-1 is a taken branch's delay slot
	var btarget uint32 // where that branch transfers after the delay slot
	// klim is where this pass must stop: the block end, or earlier if
	// the instruction budget runs out first. The caller guarantees
	// limit >= 1, and the self-loop path re-derives klim per pass.
	klim := nops
	if limit < uint64(nops) {
		klim = int(limit)
	}

	defer func() {
		c.Insts += n
		c.Cycles += extra + n*c.Cost.Inst
		c.MemWrites += writes
		if b.counted {
			c.TLB.Hits += n // one counted instruction fetch per retire
		}
		c.TLB.Hits += dataHits
	}()

	for {
		op := &ops[k]
		switch op.kind {
		case uNop:

		case uSLL:
			g[op.rd] = g[op.rt] << op.imm
		case uSRL:
			g[op.rd] = g[op.rt] >> op.imm
		case uSRA:
			g[op.rd] = uint32(int32(g[op.rt]) >> op.imm)
		case uSLLV:
			g[op.rd] = g[op.rt] << (g[op.rs] & 31)
		case uSRLV:
			g[op.rd] = g[op.rt] >> (g[op.rs] & 31)
		case uSRAV:
			g[op.rd] = uint32(int32(g[op.rt]) >> (g[op.rs] & 31))

		case uMFHI:
			g[op.rd] = c.HI
		case uMTHI:
			c.HI = g[op.rs]
		case uMFLO:
			g[op.rd] = c.LO
		case uMTLO:
			c.LO = g[op.rs]
		case uMULT:
			p := int64(int32(g[op.rs])) * int64(int32(g[op.rt]))
			c.LO, c.HI = uint32(p), uint32(p>>32)
			extra += c.Cost.MultExtra
		case uMULTU:
			p := uint64(g[op.rs]) * uint64(g[op.rt])
			c.LO, c.HI = uint32(p), uint32(p>>32)
			extra += c.Cost.MultExtra
		case uDIV:
			rs, rt := g[op.rs], g[op.rt]
			if rt != 0 {
				c.LO = uint32(int32(rs) / int32(rt))
				c.HI = uint32(int32(rs) % int32(rt))
			} else {
				c.LO, c.HI = 0, 0
			}
			extra += c.Cost.DivExtra
		case uDIVU:
			rs, rt := g[op.rs], g[op.rt]
			if rt != 0 {
				c.LO, c.HI = rs/rt, rs%rt
			} else {
				c.LO, c.HI = 0, 0
			}
			extra += c.Cost.DivExtra

		case uADD:
			rs, rt := g[op.rs], g[op.rt]
			sum := rs + rt
			if overflowAdd(rs, rt, sum) {
				goto bail
			}
			if op.rd != 0 {
				g[op.rd] = sum
			}
		case uADDU:
			g[op.rd] = g[op.rs] + g[op.rt]
		case uSUB:
			rs, rt := g[op.rs], g[op.rt]
			diff := rs - rt
			if overflowSub(rs, rt, diff) {
				goto bail
			}
			if op.rd != 0 {
				g[op.rd] = diff
			}
		case uSUBU:
			g[op.rd] = g[op.rs] - g[op.rt]
		case uAND:
			g[op.rd] = g[op.rs] & g[op.rt]
		case uOR:
			g[op.rd] = g[op.rs] | g[op.rt]
		case uXOR:
			g[op.rd] = g[op.rs] ^ g[op.rt]
		case uNOR:
			g[op.rd] = ^(g[op.rs] | g[op.rt])
		case uSLT:
			g[op.rd] = b2u(int32(g[op.rs]) < int32(g[op.rt]))
		case uSLTU:
			g[op.rd] = b2u(g[op.rs] < g[op.rt])

		case uADDI:
			rs := g[op.rs]
			sum := rs + op.imm
			if overflowAdd(rs, op.imm, sum) {
				goto bail
			}
			if op.rd != 0 {
				g[op.rd] = sum
			}
		case uADDIU:
			g[op.rd] = g[op.rs] + op.imm
		case uSLTI:
			g[op.rd] = b2u(int32(g[op.rs]) < int32(op.imm))
		case uSLTIU:
			g[op.rd] = b2u(g[op.rs] < op.imm)
		case uANDI:
			g[op.rd] = g[op.rs] & op.imm
		case uORI:
			g[op.rd] = g[op.rs] | op.imm
		case uXORI:
			g[op.rd] = g[op.rs] ^ op.imm
		case uLUI:
			g[op.rd] = op.imm

		case uMFXT:
			g[op.rd] = c.XT
		case uMTXT:
			c.XT = g[op.rs]
		case uMFXC:
			g[op.rd] = c.XC
		case uMFXB:
			g[op.rd] = c.XB

		case uLB, uLBU:
			va := g[op.rs] + op.imm
			e := c.dtlbLookup(va, false)
			if e == nil {
				goto bail
			}
			if e.counted {
				dataHits++
			}
			if op.rd != 0 {
				v := e.page.Byte(va)
				if op.kind == uLB {
					g[op.rd] = uint32(int32(int8(v)))
				} else {
					g[op.rd] = uint32(v)
				}
			}
			extra += c.Cost.LoadStoreExtra
		case uLH, uLHU:
			va := g[op.rs] + op.imm
			if va&1 != 0 {
				goto bail
			}
			e := c.dtlbLookup(va, false)
			if e == nil {
				goto bail
			}
			if e.counted {
				dataHits++
			}
			if op.rd != 0 {
				v := e.page.Half(va)
				if op.kind == uLH {
					g[op.rd] = uint32(int32(int16(v)))
				} else {
					g[op.rd] = uint32(v)
				}
			}
			extra += c.Cost.LoadStoreExtra
		case uLW:
			va := g[op.rs] + op.imm
			if va&3 != 0 {
				goto bail
			}
			e := c.dtlbLookup(va, false)
			if e == nil {
				goto bail
			}
			if e.counted {
				dataHits++
			}
			if op.rd != 0 {
				g[op.rd] = e.page.Word(va)
			}
			extra += c.Cost.LoadStoreExtra

		case uSB:
			va := g[op.rs] + op.imm
			e := c.dtlbLookup(va, true)
			if e == nil {
				goto bail
			}
			if e.counted {
				dataHits++
			}
			e.page.SetByte(va, uint8(g[op.rt]))
			writes++
			extra += c.Cost.LoadStoreExtra
			if e.page == b.page {
				goto smcExit
			}
		case uSH:
			va := g[op.rs] + op.imm
			if va&1 != 0 {
				goto bail
			}
			e := c.dtlbLookup(va, true)
			if e == nil {
				goto bail
			}
			if e.counted {
				dataHits++
			}
			e.page.SetHalf(va, uint16(g[op.rt]))
			writes++
			extra += c.Cost.LoadStoreExtra
			if e.page == b.page {
				goto smcExit
			}
		case uSW:
			va := g[op.rs] + op.imm
			if va&3 != 0 {
				goto bail
			}
			e := c.dtlbLookup(va, true)
			if e == nil {
				goto bail
			}
			if e.counted {
				dataHits++
			}
			e.page.SetWord(va, g[op.rt])
			writes++
			extra += c.Cost.LoadStoreExtra
			if e.page == b.page {
				goto smcExit
			}

		// Terminators. A taken branch records its target and marks
		// the next op — always the last — as its delay slot; a
		// not-taken conditional branch is architecturally a plain
		// sequential instruction (the interpreter leaves
		// prevWasBranch false), so it falls through like one. Either
		// way control reaches the shared boundary check below, which
		// performs the budget stop at the delay slot when needed.
		case uJ:
			btarget = op.imm
			inDelay = true
		case uJAL:
			g[arch.RegRA] = b.startVA + uint32(k)*4 + 8
			btarget = op.imm
			inDelay = true
		case uJR:
			btarget = g[op.rs]
			inDelay = true
		case uJALR:
			t := g[op.rs] // capture before the link write (jalr rd, rd)
			if op.rd != 0 {
				g[op.rd] = b.startVA + uint32(k)*4 + 8
			}
			btarget = t
			inDelay = true
		case uBEQ:
			if g[op.rs] == g[op.rt] {
				btarget = op.imm
				inDelay = true
			}
		case uBNE:
			if g[op.rs] != g[op.rt] {
				btarget = op.imm
				inDelay = true
			}
		case uBLEZ:
			if int32(g[op.rs]) <= 0 {
				btarget = op.imm
				inDelay = true
			}
		case uBGTZ:
			if int32(g[op.rs]) > 0 {
				btarget = op.imm
				inDelay = true
			}
		case uBLTZ:
			if int32(g[op.rs]) < 0 {
				btarget = op.imm
				inDelay = true
			}
		case uBGEZ:
			if int32(g[op.rs]) >= 0 {
				btarget = op.imm
				inDelay = true
			}
		case uBLTZAL:
			g[arch.RegRA] = b.startVA + uint32(k)*4 + 8
			if int32(g[op.rs]) < 0 {
				btarget = op.imm
				inDelay = true
			}
		case uBGEZAL:
			g[arch.RegRA] = b.startVA + uint32(k)*4 + 8
			if int32(g[op.rs]) >= 0 {
				btarget = op.imm
				inDelay = true
			}
		}

		// Op k retired.
		k++
		if k >= klim {
			if k < nops {
				goto bail // budget exhausted before the block end
			}
			n += uint64(k - k0)
			if !inDelay {
				// Fell off the end of a straight-line block (or a
				// not-taken branch's fall-through).
				c.PC = b.startVA + uint32(k)*4
				c.NPC = c.PC + 4
				c.prevWasBranch = false
				return n
			}
			// The delay slot of a taken branch just retired: transfer.
			if btarget == b.startVA && selfLoop && n < limit {
				k, k0 = 0, 0
				inDelay = false
				klim = nops
				if rem := limit - n; rem < uint64(nops) {
					klim = int(rem)
				}
				continue
			}
			c.PC = btarget
			c.NPC = btarget + 4
			c.prevWasBranch = false
			return n
		}
	}

smcExit:
	// A store landed in this block's own code page: the store (op k)
	// completes with full accounting, then the block exits at the next
	// instruction boundary so the moved page generation is observed
	// before another translated instruction runs. A delay-slot store
	// still transfers to the branch target.
	k++
	n += uint64(k - k0)
	if inDelay && k == nops {
		c.PC = btarget
	} else {
		c.PC = b.startVA + uint32(k)*4
	}
	c.NPC = c.PC + 4
	c.prevWasBranch = false
	return n

bail:
	// Exit before op k executes, reconstructing the exact interpreter
	// state. In a delay slot (k == nops-1 with a taken branch pending)
	// the interpreter would be at PC=slot, NPC=target with
	// prevWasBranch set — EPC arithmetic must see the branch;
	// otherwise the machine simply sits at op k's address.
	n += uint64(k - k0)
	c.PC = b.startVA + uint32(k)*4
	if inDelay {
		c.NPC = btarget
		c.prevWasBranch = true
	} else {
		c.NPC = c.PC + 4
		c.prevWasBranch = false
	}
	return n
}
