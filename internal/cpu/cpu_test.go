package cpu

import (
	"testing"

	"uexc/internal/arch"
	"uexc/internal/asm"
	"uexc/internal/mem"
	"uexc/internal/tlb"
)

// testMachine wraps a CPU with helpers for loading assembled programs
// and recording hcalls.
type testMachine struct {
	t  *testing.T
	c  *CPU
	m  *mem.Memory
	tl *tlb.TLB

	hcalls []hcallRec
}

type hcallRec struct {
	code uint32
	v0   uint32
	a0   uint32
}

// Test hcall codes: 0 halts, anything else records (code, v0, a0).
const hcExit = 0

func newTestMachine(t *testing.T) *testMachine {
	t.Helper()
	m := mem.New(1 << 29) // covers kseg1's reset vector region
	tl := &tlb.TLB{}
	c := New(m, tl)
	tm := &testMachine{t: t, c: c, m: m, tl: tl}
	c.HCall = func(c *CPU, code uint32) error {
		if code == hcExit {
			c.Halted = true
			return nil
		}
		tm.hcalls = append(tm.hcalls, hcallRec{code, c.GPR[arch.RegV0], c.GPR[arch.RegA0]})
		return nil
	}
	return tm
}

// load assembles src and loads its chunks: kseg addresses map directly
// to physical; kuseg chunks are loaded at pa == va and identity-mapped
// writable in the TLB.
func (tm *testMachine) load(src string) *asm.Program {
	tm.t.Helper()
	p, err := asm.Assemble(src, arch.KSeg0Base)
	if err != nil {
		tm.t.Fatalf("assemble: %v", err)
	}
	for _, ch := range p.Chunks {
		pa := ch.Addr
		if ch.Addr >= arch.KSeg0Base {
			pa = arch.KSegPhys(ch.Addr)
		} else {
			tm.mapIdentity(ch.Addr, uint32(len(ch.Data)), true)
		}
		if err := tm.m.Write(pa, ch.Data); err != nil {
			tm.t.Fatalf("load %#x: %v", ch.Addr, err)
		}
	}
	return p
}

// mapIdentity installs writable identity TLB mappings for [va, va+n).
func (tm *testMachine) mapIdentity(va, n uint32, writable bool) {
	flags := tlb.LoV
	if writable {
		flags |= tlb.LoD
	}
	first := va >> arch.PageShift
	last := (va + n - 1) >> arch.PageShift
	for vpn := first; vpn <= last; vpn++ {
		if idx, ok := tm.tl.Probe(tlb.MakeHi(vpn, 0)); ok {
			tm.tl.WriteIndexed(idx, tlb.Entry{Hi: tlb.MakeHi(vpn, 0), Lo: tlb.MakeLo(vpn, flags)})
			continue
		}
		tm.tl.WriteRandom(tlb.Entry{Hi: tlb.MakeHi(vpn, 0), Lo: tlb.MakeLo(vpn, flags)})
	}
}

// run starts at the "start" symbol (kernel mode) and runs to halt.
func (tm *testMachine) run(p *asm.Program, maxInst uint64) {
	tm.t.Helper()
	tm.c.PC = p.MustSymbol("start")
	tm.c.NPC = tm.c.PC + 4
	if _, err := tm.c.Run(maxInst); err != nil {
		tm.t.Fatalf("run: %v (pc=%#x)", err, tm.c.PC)
	}
}

// record returns the single recorded hcall with the given code.
func (tm *testMachine) record(code uint32) hcallRec {
	tm.t.Helper()
	for _, r := range tm.hcalls {
		if r.code == code {
			return r
		}
	}
	tm.t.Fatalf("no hcall %d recorded (have %v)", code, tm.hcalls)
	return hcallRec{}
}

func TestArithmeticAndMemory(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80002000
start:
		li   t0, 41
		addiu t0, t0, 1
		li   t1, 0x12340000
		ori  t1, t1, 0x5678
		la   t2, scratch
		sw   t0, 0(t2)
		sw   t1, 4(t2)
		lw   v0, 0(t2)
		hcall 1            # record v0 = 42
		lw   v0, 4(t2)
		hcall 2            # record v0 = 0x12345678
		lb   v0, 4(t2)     # low byte (little-endian) = 0x78
		hcall 3
		lbu  v0, 7(t2)     # high byte = 0x12
		hcall 4
		lh   v0, 4(t2)
		hcall 5
		hcall 0
scratch: .word 0, 0
	`)
	tm.run(p, 1000)
	if r := tm.record(1); r.v0 != 42 {
		t.Errorf("record 1 = %#x", r.v0)
	}
	if r := tm.record(2); r.v0 != 0x12345678 {
		t.Errorf("record 2 = %#x", r.v0)
	}
	if r := tm.record(3); r.v0 != 0x78 {
		t.Errorf("lb = %#x", r.v0)
	}
	if r := tm.record(4); r.v0 != 0x12 {
		t.Errorf("lbu = %#x", r.v0)
	}
	if r := tm.record(5); r.v0 != 0x5678 {
		t.Errorf("lh = %#x", r.v0)
	}
}

func TestBranchDelaySlotExecutes(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80002000
start:
		li   v0, 0
		b    over
		addiu v0, v0, 5   # delay slot: must execute
		addiu v0, v0, 100 # skipped
over:
		hcall 1
		hcall 0
	`)
	tm.run(p, 100)
	if r := tm.record(1); r.v0 != 5 {
		t.Errorf("v0 = %d, want 5 (delay slot must run, fall-through must not)", r.v0)
	}
}

func TestNotTakenBranchDelaySlotStillExecutes(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80002000
start:
		li   v0, 0
		li   t0, 1
		beq  t0, zero, away   # not taken
		addiu v0, v0, 7       # delay slot executes regardless
		addiu v0, v0, 1
		hcall 1
		hcall 0
away:
		hcall 2
		hcall 0
	`)
	tm.run(p, 100)
	if r := tm.record(1); r.v0 != 8 {
		t.Errorf("v0 = %d, want 8", r.v0)
	}
	if len(tm.hcalls) != 1 {
		t.Errorf("took wrong path: %v", tm.hcalls)
	}
}

func TestJALLinksPastDelaySlot(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80002000
start:
		jal  sub
		li   v0, 1          # delay slot
		hcall 1             # return lands here
		hcall 0
sub:
		jr   ra
		addiu v0, v0, 10    # delay slot of jr
	`)
	tm.run(p, 100)
	if r := tm.record(1); r.v0 != 11 {
		t.Errorf("v0 = %d, want 11", r.v0)
	}
}

func TestMultDiv(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80002000
start:
		li   t0, 100000
		li   t1, 300000
		multu t0, t1
		mflo v0
		hcall 1
		mfhi v0
		hcall 2
		li   t0, 0xffffffff    # -1
		li   t1, 5
		mult t0, t1            # -5
		mflo v0
		hcall 3
		li   t0, 17
		li   t1, 5
		div  t0, t1
		mflo v0
		hcall 4
		mfhi v0
		hcall 5
		hcall 0
	`)
	tm.run(p, 100)
	p100k300k := uint64(100000) * 300000
	if r := tm.record(1); r.v0 != uint32(p100k300k) {
		t.Errorf("multu lo = %#x", r.v0)
	}
	if r := tm.record(2); r.v0 != uint32(p100k300k>>32) {
		t.Errorf("multu hi = %#x", r.v0)
	}
	if r := tm.record(3); int32(r.v0) != -5 {
		t.Errorf("mult lo = %d", int32(r.v0))
	}
	if r := tm.record(4); r.v0 != 3 {
		t.Errorf("div quot = %d", r.v0)
	}
	if r := tm.record(5); r.v0 != 2 {
		t.Errorf("div rem = %d", r.v0)
	}
}

func TestOverflowException(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80000080
		mfc0 v0, c0_cause
		hcall 1
		mfc0 v0, c0_epc
		hcall 2
		hcall 0

		.org 0x80002000
start:
		li   t0, 0x7fffffff
		li   t1, 1
faulting:
		add  v0, t0, t1       # overflow
		hcall 3               # must not run
		hcall 0
	`)
	tm.run(p, 100)
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcOv {
		t.Errorf("cause = %#x, want Ov", r.v0)
	}
	if r := tm.record(2); r.v0 != p.MustSymbol("faulting") {
		t.Errorf("epc = %#x, want %#x", r.v0, p.MustSymbol("faulting"))
	}
	for _, r := range tm.hcalls {
		if r.code == 3 {
			t.Error("instruction after fault executed")
		}
	}
}

func TestSyscallAndBreakVector(t *testing.T) {
	for _, tc := range []struct {
		inst string
		want uint32
	}{{"syscall", arch.ExcSys}, {"break 7", arch.ExcBp}} {
		tm := newTestMachine(t)
		p := tm.load(`
		.org 0x80000080
		mfc0 v0, c0_cause
		hcall 1
		hcall 0
		.org 0x80002000
start:
		` + tc.inst + `
		hcall 0
	`)
		tm.run(p, 100)
		if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != tc.want {
			t.Errorf("%s: cause = %#x, want code %d", tc.inst, r.v0, tc.want)
		}
	}
}

func TestDelaySlotFaultSetsBDAndBranchEPC(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80000080
		mfc0 v0, c0_cause
		hcall 1
		mfc0 v0, c0_epc
		hcall 2
		hcall 0
		.org 0x80002000
start:
branchpc:
		b    target
		break             # fault in delay slot
target:
		hcall 0
	`)
	tm.run(p, 100)
	r := tm.record(1)
	if r.v0&arch.CauseBD == 0 {
		t.Error("Cause.BD not set for delay-slot fault")
	}
	if r2 := tm.record(2); r2.v0 != p.MustSymbol("branchpc") {
		t.Errorf("EPC = %#x, want branch at %#x", r2.v0, p.MustSymbol("branchpc"))
	}
}

func TestRFEPopsStatusStack(t *testing.T) {
	tm := newTestMachine(t)
	// Enter with KUc=0 (kernel). Take exception: stack pushes. RFE pops.
	p := tm.load(`
		.org 0x80000080
		mfc0 v0, c0_status
		hcall 1               # status after push
		mfc0 k0, c0_epc
		addiu k0, k0, 4
		jr   k0
		rfe                   # delay slot: pop
		.org 0x80002000
start:
		mfc0 t0, c0_status
		ori  t0, t0, 0x1      # IEc=1 (stay kernel)
		mtc0 t0, c0_status
		break
		mfc0 v0, c0_status
		hcall 2               # status after rfe
		hcall 0
	`)
	tm.run(p, 100)
	if r := tm.record(1); r.v0&0x3f != 0x04 { // KUc=0,IEc=0, KUp=0,IEp=1
		t.Errorf("status after push = %#x, want low bits 0x04", r.v0)
	}
	if r := tm.record(2); r.v0&0x3f != 0x01 {
		t.Errorf("status after rfe = %#x, want low bits 0x01", r.v0)
	}
}

// enterUserHarness is a kernel wrapper that maps nothing extra, switches
// to user mode at the "user" symbol, and forwards exceptions to hcalls:
// cause recorded as hcall 1, epc as hcall 2, badvaddr as hcall 3, then
// halts.
const enterUserHarness = `
		.org 0x80000000
		# UTLB refill vector: record and halt
		mfc0 v0, c0_cause
		hcall 10
		mfc0 v0, c0_badvaddr
		hcall 11
		hcall 0

		.org 0x80000080
		mfc0 v0, c0_cause
		hcall 1
		mfc0 v0, c0_epc
		hcall 2
		mfc0 v0, c0_badvaddr
		hcall 3
		hcall 0

		.org 0x80001000
start:
		la   k0, user
		mtc0 k0, c0_epc
		mfc0 t0, c0_status
		ori  t0, t0, 0x8     # KUp = user
		mtc0 t0, c0_status
		mfc0 k0, c0_epc
		jr   k0
		rfe
`

func TestUserModeKsegAccessFaults(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(enterUserHarness + `
		.org 0x4000
user:
		li   t0, 0x80000000
		lw   v0, 0(t0)       # user load from kseg0: AdEL
		nop
	`)
	tm.run(p, 200)
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcAdEL {
		t.Errorf("cause = %#x, want AdEL", r.v0)
	}
	if r := tm.record(3); r.v0 != 0x80000000 {
		t.Errorf("badvaddr = %#x", r.v0)
	}
}

func TestUserModePrivilegedInstructionFaults(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(enterUserHarness + `
		.org 0x4000
user:
		mfc0 t0, c0_status   # privileged in user mode: CpU
		nop
	`)
	tm.run(p, 200)
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcCpU {
		t.Errorf("cause = %#x, want CpU", r.v0)
	}
}

func TestUserHCALLIsReservedInstruction(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(enterUserHarness + `
		.org 0x4000
user:
		hcall 99             # user hcall: RI
		nop
	`)
	tm.run(p, 200)
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcRI {
		t.Errorf("cause = %#x, want RI", r.v0)
	}
	for _, r := range tm.hcalls {
		if r.code == 99 {
			t.Error("user hcall invoked the hook")
		}
	}
}

func TestUnalignedLoadFaults(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(enterUserHarness + `
		.org 0x4000
user:
		li   t0, 0x4101
		lw   v0, 0(t0)       # unaligned: AdEL
		nop
	`)
	tm.run(p, 200)
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcAdEL {
		t.Errorf("cause = %#x, want AdEL", r.v0)
	}
	if r := tm.record(3); r.v0 != 0x4101 {
		t.Errorf("badvaddr = %#x, want 0x4101", r.v0)
	}
}

func TestTLBMissVectorsToRefillHandler(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(enterUserHarness + `
		.org 0x4000
user:
		li   t0, 0x00700000   # unmapped page
		lw   v0, 0(t0)
		nop
	`)
	tm.run(p, 200)
	if r := tm.record(10); r.v0>>arch.CauseExcShift&31 != arch.ExcTLBL {
		t.Errorf("refill cause = %#x, want TLBL", r.v0)
	}
	if r := tm.record(11); r.v0 != 0x00700000 {
		t.Errorf("refill badvaddr = %#x", r.v0)
	}
}

func TestStoreToCleanPageRaisesMod(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(enterUserHarness + `
		.org 0x4000
user:
		li   t0, 0x00600000
		sw   v0, 0(t0)        # mapped read-only below
		nop
	`)
	// Map 0x600000 valid but clean (not writable).
	tm.tl.WriteIndexed(9, tlb.Entry{
		Hi: tlb.MakeHi(0x600, 0), Lo: tlb.MakeLo(0x600, tlb.LoV),
	})
	tm.run(p, 200)
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcMod {
		t.Errorf("cause = %#x, want Mod", r.v0)
	}
	if r := tm.record(3); r.v0 != 0x00600000 {
		t.Errorf("badvaddr = %#x", r.v0)
	}
}

func TestInvalidEntryGoesToGeneralVector(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(enterUserHarness + `
		.org 0x4000
user:
		li   t0, 0x00600000
		lw   v0, 0(t0)
		nop
	`)
	tm.tl.WriteIndexed(9, tlb.Entry{
		Hi: tlb.MakeHi(0x600, 0), Lo: tlb.MakeLo(0x600, 0), // present, invalid
	})
	tm.run(p, 200)
	// Must hit general vector (hcall 1), not refill (hcall 10).
	if r := tm.record(1); r.v0>>arch.CauseExcShift&31 != arch.ExcTLBL {
		t.Errorf("cause = %#x, want TLBL at general vector", r.v0)
	}
}

func TestKernelTLBInstructions(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80002000
start:
		# Write entry 5: vpn 0x123 -> pfn 0x456, V|D
		li   t0, 0x123000
		sll  t0, t0, 0      # entryhi = vpn<<12
		mtc0 t0, c0_entryhi
		li   t1, 0x456000 | 0x600   # pfn<<12 | D | V
		mtc0 t1, c0_entrylo
		li   t2, 5 << 8
		mtc0 t2, c0_index
		tlbwi
		# Probe for it
		li   t0, 0x123000
		mtc0 t0, c0_entryhi
		tlbp
		mfc0 v0, c0_index
		hcall 1
		# Read it back
		tlbr
		mfc0 v0, c0_entrylo
		hcall 2
		hcall 0
	`)
	tm.run(p, 200)
	if r := tm.record(1); r.v0 != 5<<8 {
		t.Errorf("tlbp index = %#x, want %#x", r.v0, 5<<8)
	}
	if r := tm.record(2); r.v0 != 0x456000|0x600 {
		t.Errorf("tlbr entrylo = %#x", r.v0)
	}
	e, idx, ok := tm.tl.Lookup(0x123abc, 0)
	if !ok || idx != 5 || e.PFN() != 0x456 {
		t.Errorf("lookup after tlbwi: %+v idx=%d ok=%v", e, idx, ok)
	}
}

func TestGPR0AlwaysZero(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80002000
start:
		li   t0, 77
		addu zero, t0, t0
		move v0, zero
		hcall 1
		hcall 0
	`)
	tm.run(p, 100)
	if r := tm.record(1); r.v0 != 0 {
		t.Errorf("zero register = %d", r.v0)
	}
}

func TestCycleAccounting(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80002000
start:
		nop
		nop
		la  t0, pad
		lw  t1, 0(t0)
		hcall 0
pad: .word 0
	`)
	tm.run(p, 100)
	// 2 nops + 2 (la) + lw + hcall = 6 base; lw adds LoadStoreExtra.
	want := 6*tm.c.Cost.Inst + tm.c.Cost.LoadStoreExtra
	if tm.c.Cycles != want {
		t.Errorf("cycles = %d, want %d", tm.c.Cycles, want)
	}
	if tm.c.Insts != 6 {
		t.Errorf("insts = %d, want 6", tm.c.Insts)
	}
}

func TestPCCounting(t *testing.T) {
	tm := newTestMachine(t)
	tm.c.CountPCs = true
	p := tm.load(`
		.org 0x80002000
start:
		li   t0, 3
loop:
		addiu t0, t0, -1
		bnez t0, loop
		nop
		hcall 0
	`)
	tm.run(p, 100)
	loop := p.MustSymbol("loop")
	if tm.c.PCCounts[loop] != 3 {
		t.Errorf("loop body count = %d, want 3", tm.c.PCCounts[loop])
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	tm := newTestMachine(t)
	p := tm.load(`
		.org 0x80002000
start:
		b start
		nop
	`)
	tm.c.PC = p.MustSymbol("start")
	tm.c.NPC = tm.c.PC + 4
	if _, err := tm.c.Run(100); err == nil {
		t.Fatal("Run returned nil on infinite loop")
	}
}
