package cpu

import (
	"uexc/internal/arch"
	"uexc/internal/tlb"
)

// SetPC redirects control flow from host-side code (HCALL hooks) or
// PC-exchanging instructions, bypassing the normal fall-through update
// for the current step.
func (c *CPU) SetPC(pc uint32) {
	c.PC = pc
	c.NPC = pc + 4
	c.redirect = true
}

// execute performs one decoded instruction. It returns a non-nil signal
// if the instruction faults (in which case it must have had no
// architectural effect). branchTo schedules a control transfer after
// the delay slot.
func (c *CPU) execute(i *arch.Inst, pc uint32) *excSignal {
	g := &c.GPR
	rs, rt, rd := g[i.Rs], g[i.Rt], &g[i.Rd]

	switch i.Mn {
	case arch.MnInvalid:
		return exc(arch.ExcRI)

	// --- shifts ---
	case arch.MnSLL:
		g[i.Rd] = g[i.Rt] << i.Shamt
	case arch.MnSRL:
		g[i.Rd] = g[i.Rt] >> i.Shamt
	case arch.MnSRA:
		g[i.Rd] = uint32(int32(g[i.Rt]) >> i.Shamt)
	case arch.MnSLLV:
		*rd = rt << (rs & 31)
	case arch.MnSRLV:
		*rd = rt >> (rs & 31)
	case arch.MnSRAV:
		*rd = uint32(int32(rt) >> (rs & 31))

	// --- jumps ---
	case arch.MnJR:
		c.branchTo(rs)
	case arch.MnJALR:
		*rd = pc + 8
		c.branchTo(rs)
	case arch.MnJ:
		c.branchTo(arch.JumpTarget(pc, i.Target))
	case arch.MnJAL:
		g[arch.RegRA] = pc + 8
		c.branchTo(arch.JumpTarget(pc, i.Target))

	// --- traps ---
	case arch.MnSYSCALL:
		return exc(arch.ExcSys)
	case arch.MnBREAK:
		return exc(arch.ExcBp)

	// --- hi/lo and multiply/divide ---
	case arch.MnMFHI:
		*rd = c.HI
	case arch.MnMTHI:
		c.HI = rs
	case arch.MnMFLO:
		*rd = c.LO
	case arch.MnMTLO:
		c.LO = rs
	case arch.MnMULT:
		p := int64(int32(rs)) * int64(int32(rt))
		c.LO, c.HI = uint32(p), uint32(p>>32)
		c.Cycles += c.Cost.MultExtra
	case arch.MnMULTU:
		p := uint64(rs) * uint64(rt)
		c.LO, c.HI = uint32(p), uint32(p>>32)
		c.Cycles += c.Cost.MultExtra
	case arch.MnDIV:
		if rt != 0 {
			c.LO = uint32(int32(rs) / int32(rt))
			c.HI = uint32(int32(rs) % int32(rt))
		} else {
			c.LO, c.HI = 0, 0
		}
		c.Cycles += c.Cost.DivExtra
	case arch.MnDIVU:
		if rt != 0 {
			c.LO, c.HI = rs/rt, rs%rt
		} else {
			c.LO, c.HI = 0, 0
		}
		c.Cycles += c.Cost.DivExtra

	// --- arithmetic/logic, register ---
	case arch.MnADD:
		sum := rs + rt
		if overflowAdd(rs, rt, sum) {
			return exc(arch.ExcOv)
		}
		*rd = sum
	case arch.MnADDU:
		*rd = rs + rt
	case arch.MnSUB:
		diff := rs - rt
		if overflowSub(rs, rt, diff) {
			return exc(arch.ExcOv)
		}
		*rd = diff
	case arch.MnSUBU:
		*rd = rs - rt
	case arch.MnAND:
		*rd = rs & rt
	case arch.MnOR:
		*rd = rs | rt
	case arch.MnXOR:
		*rd = rs ^ rt
	case arch.MnNOR:
		*rd = ^(rs | rt)
	case arch.MnSLT:
		*rd = b2u(int32(rs) < int32(rt))
	case arch.MnSLTU:
		*rd = b2u(rs < rt)

	// --- branches ---
	case arch.MnBLTZ:
		if int32(rs) < 0 {
			c.branchTo(arch.BranchTarget(pc, i.Imm))
		}
	case arch.MnBGEZ:
		if int32(rs) >= 0 {
			c.branchTo(arch.BranchTarget(pc, i.Imm))
		}
	case arch.MnBLTZAL:
		g[arch.RegRA] = pc + 8
		if int32(rs) < 0 {
			c.branchTo(arch.BranchTarget(pc, i.Imm))
		}
	case arch.MnBGEZAL:
		g[arch.RegRA] = pc + 8
		if int32(rs) >= 0 {
			c.branchTo(arch.BranchTarget(pc, i.Imm))
		}
	case arch.MnBEQ:
		if rs == rt {
			c.branchTo(arch.BranchTarget(pc, i.Imm))
		}
	case arch.MnBNE:
		if rs != rt {
			c.branchTo(arch.BranchTarget(pc, i.Imm))
		}
	case arch.MnBLEZ:
		if int32(rs) <= 0 {
			c.branchTo(arch.BranchTarget(pc, i.Imm))
		}
	case arch.MnBGTZ:
		if int32(rs) > 0 {
			c.branchTo(arch.BranchTarget(pc, i.Imm))
		}

	// --- arithmetic/logic, immediate ---
	case arch.MnADDI:
		imm := uint32(i.SImm())
		sum := rs + imm
		if overflowAdd(rs, imm, sum) {
			return exc(arch.ExcOv)
		}
		g[i.Rt] = sum
	case arch.MnADDIU:
		g[i.Rt] = rs + uint32(i.SImm())
	case arch.MnSLTI:
		g[i.Rt] = b2u(int32(rs) < i.SImm())
	case arch.MnSLTIU:
		g[i.Rt] = b2u(rs < uint32(i.SImm()))
	case arch.MnANDI:
		g[i.Rt] = rs & uint32(i.Imm)
	case arch.MnORI:
		g[i.Rt] = rs | uint32(i.Imm)
	case arch.MnXORI:
		g[i.Rt] = rs ^ uint32(i.Imm)
	case arch.MnLUI:
		g[i.Rt] = uint32(i.Imm) << 16

	// --- CP0 ---
	case arch.MnMFC0, arch.MnMTC0, arch.MnTLBR, arch.MnTLBWI,
		arch.MnTLBWR, arch.MnTLBP, arch.MnRFE:
		if !c.KernelMode() {
			return exc(arch.ExcCpU)
		}
		return c.executeCP0(i)

	// --- loads ---
	case arch.MnLB:
		v, sig := c.loadByte(rs + uint32(i.SImm()))
		if sig != nil {
			return sig
		}
		g[i.Rt] = uint32(int32(int8(v)))
		c.Cycles += c.Cost.LoadStoreExtra
	case arch.MnLBU:
		v, sig := c.loadByte(rs + uint32(i.SImm()))
		if sig != nil {
			return sig
		}
		g[i.Rt] = uint32(v)
		c.Cycles += c.Cost.LoadStoreExtra
	case arch.MnLH:
		v, sig := c.loadHalf(rs + uint32(i.SImm()))
		if sig != nil {
			return sig
		}
		g[i.Rt] = uint32(int32(int16(v)))
		c.Cycles += c.Cost.LoadStoreExtra
	case arch.MnLHU:
		v, sig := c.loadHalf(rs + uint32(i.SImm()))
		if sig != nil {
			return sig
		}
		g[i.Rt] = uint32(v)
		c.Cycles += c.Cost.LoadStoreExtra
	case arch.MnLW:
		v, sig := c.loadWord(rs + uint32(i.SImm()))
		if sig != nil {
			return sig
		}
		g[i.Rt] = v
		c.Cycles += c.Cost.LoadStoreExtra
	case arch.MnLWL:
		va := rs + uint32(i.SImm())
		w, sig := c.loadWord(va &^ 3)
		if sig != nil {
			return sig
		}
		b := va & 3
		sh := 8 * (3 - b)
		mask := uint32(0xffffffff) >> (8 * (b + 1)) // little-endian: keep low bytes
		if b == 3 {
			mask = 0
		}
		g[i.Rt] = g[i.Rt]&mask | w<<sh
		c.Cycles += c.Cost.LoadStoreExtra
	case arch.MnLWR:
		va := rs + uint32(i.SImm())
		w, sig := c.loadWord(va &^ 3)
		if sig != nil {
			return sig
		}
		b := va & 3
		sh := 8 * b
		var keep uint32
		if b != 0 {
			keep = 0xffffffff << (8 * (4 - b))
		}
		g[i.Rt] = g[i.Rt]&keep | w>>sh
		c.Cycles += c.Cost.LoadStoreExtra

	// --- stores ---
	case arch.MnSB:
		if sig := c.storeByte(rs+uint32(i.SImm()), uint8(rt)); sig != nil {
			return sig
		}
		c.Cycles += c.Cost.LoadStoreExtra
	case arch.MnSH:
		if sig := c.storeHalf(rs+uint32(i.SImm()), uint16(rt)); sig != nil {
			return sig
		}
		c.Cycles += c.Cost.LoadStoreExtra
	case arch.MnSW:
		if sig := c.storeWord(rs+uint32(i.SImm()), rt); sig != nil {
			return sig
		}
		c.Cycles += c.Cost.LoadStoreExtra
	case arch.MnSWL:
		va := rs + uint32(i.SImm())
		w, sig := c.loadWord(va &^ 3)
		if sig != nil {
			return sig
		}
		b := va & 3
		sh := 8 * (3 - b)
		// little-endian SWL: high (b+1) bytes of rt into word bytes 0..b.
		var clear uint32 = 0xffffffff >> (8 * (3 - b))
		w = w&^clear | rt>>sh
		if sig := c.storeWord(va&^3, w); sig != nil {
			return sig
		}
		c.Cycles += c.Cost.LoadStoreExtra
	case arch.MnSWR:
		va := rs + uint32(i.SImm())
		w, sig := c.loadWord(va &^ 3)
		if sig != nil {
			return sig
		}
		b := va & 3
		sh := 8 * b
		var clear uint32 = 0xffffffff << sh // word bytes b..3
		w = w&^clear | rt<<sh
		if sig := c.storeWord(va&^3, w); sig != nil {
			return sig
		}
		c.Cycles += c.Cost.LoadStoreExtra

	// --- SPECIAL2 extensions ---
	case arch.MnHCALL:
		if !c.KernelMode() {
			return exc(arch.ExcRI)
		}
		if c.OS == nil && c.HCall == nil {
			return exc(arch.ExcRI)
		}
		var err error
		if c.OS != nil {
			err = c.OS.HCall(c, i.Code)
		} else {
			err = c.HCall(c, i.Code)
		}
		if err != nil {
			c.pendingHookErr = err
		}
	case arch.MnMFXT:
		*rd = c.XT
	case arch.MnMTXT:
		c.XT = rs
	case arch.MnMFXC:
		*rd = c.XC
	case arch.MnMFXB:
		*rd = c.XB
	case arch.MnXRET:
		// Exchange PC and XT again (Tera-style return); clears the
		// recursion guard.
		target := c.XT
		c.XT = pc + 4
		wasUEX := c.CP0[arch.C0Status]&arch.SrUEX != 0
		c.CP0[arch.C0Status] &^= arch.SrUEX
		c.SetPC(target)
		if wasUEX {
			if c.OS != nil {
				c.OS.OnUEXClear()
			} else if c.OnUEXClear != nil {
				c.OnUEXClear()
			}
		}
	case arch.MnUTLBMOD:
		return c.executeUTLBMod(rs, rt)
	}
	return nil
}

// executeCP0 handles privileged system-control instructions; the caller
// has already verified kernel mode.
func (c *CPU) executeCP0(i *arch.Inst) *excSignal {
	switch i.Mn {
	case arch.MnMFC0:
		v := c.CP0[i.C0Reg&31]
		if i.C0Reg == arch.C0Random {
			v = uint32(c.TLB.Random()) << 8
		}
		c.GPR[i.Rt] = v
	case arch.MnMTC0:
		c.CP0[i.C0Reg&31] = c.GPR[i.Rt]
	case arch.MnTLBR:
		e := c.TLB.Read(int(c.CP0[arch.C0Index] >> 8 & 63))
		c.CP0[arch.C0EntryHi] = e.Hi
		c.CP0[arch.C0EntryLo] = e.Lo
	case arch.MnTLBWI:
		c.TLB.WriteIndexed(int(c.CP0[arch.C0Index]>>8&63), tlb.Entry{
			Hi: c.CP0[arch.C0EntryHi], Lo: c.CP0[arch.C0EntryLo],
		})
	case arch.MnTLBWR:
		c.TLB.WriteRandom(tlb.Entry{
			Hi: c.CP0[arch.C0EntryHi], Lo: c.CP0[arch.C0EntryLo],
		})
	case arch.MnTLBP:
		if idx, ok := c.TLB.Probe(c.CP0[arch.C0EntryHi]); ok {
			c.CP0[arch.C0Index] = uint32(idx) << 8
		} else {
			c.CP0[arch.C0Index] = 1 << 31
		}
	case arch.MnRFE:
		// Pop the KU/IE stack: current <= previous <= old.
		sr := c.CP0[arch.C0Status]
		c.CP0[arch.C0Status] = sr&^0xf | sr>>2&0xf
	}
	return nil
}

// executeUTLBMod implements the proposed user-level TLB protection
// update: rs holds the virtual address, rt the new protection
// (bit 0 = writable, bit 1 = valid/readable). User mode requires the
// entry's U bit; the translation is never modified. An entry miss or a
// forbidden entry raises a reserved-instruction exception, sending the
// (mis)use to the kernel.
func (c *CPU) executeUTLBMod(va, prot uint32) *excSignal {
	if !c.KernelMode() && !c.HWUTLBMod {
		// Hardware support absent: trap so the kernel can emulate the
		// opcode (§3.2.3's software variant).
		return exc(arch.ExcRI)
	}
	e, idx, ok := c.TLB.Lookup(va, c.ASID())
	if !ok {
		return exc(arch.ExcRI)
	}
	if !c.KernelMode() && !e.UserModifiable() {
		return exc(arch.ExcRI)
	}
	c.TLB.UpdateProtection(idx, prot&1 != 0, prot&2 != 0)
	return nil
}

func overflowAdd(a, b, sum uint32) bool {
	return (a^b)&0x80000000 == 0 && (a^sum)&0x80000000 != 0
}

func overflowSub(a, b, diff uint32) bool {
	return (a^b)&0x80000000 != 0 && (a^diff)&0x80000000 != 0
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
