package cpu

import (
	"errors"
	"fmt"
	"testing"

	"uexc/internal/arch"
	"uexc/internal/asm"
	"uexc/internal/mem"
	"uexc/internal/tlb"
)

// The tests here pin the translation tier's invalidation edges: a
// store that patches the very block executing it, ASID reuse after a
// TLB rewrite, straight-line code crossing a page boundary whose
// second page is patched, and an engine switch flipped mid-run. Each
// runs the JIT machine in lockstep with a pure-interpreter reference
// and compares the complete architectural state between chunks, the
// same oracle TestFastPathTortureLockstep uses.

// engineMachine is one lockstep participant for the focused tests.
type engineMachine struct {
	c  *CPU
	m  *mem.Memory
	tl *tlb.TLB
	p  *asm.Program
}

// newEngineMachine assembles src (absolute .org addresses; kseg0
// chunks load at their physical alias), points PC at entry, and
// selects the execution tier under test.
func newEngineMachine(t *testing.T, src string, entry uint32, engine Engine) *engineMachine {
	t.Helper()
	m := mem.New(1 << 22)
	tl := &tlb.TLB{}
	c := New(m, tl)
	c.Engine = engine

	p, err := asm.Assemble(src, arch.KSeg0Base)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	for _, ch := range p.Chunks {
		pa := ch.Addr
		if ch.Addr >= arch.KSeg0Base {
			pa = arch.KSegPhys(ch.Addr)
		}
		if err := m.Write(pa, ch.Data); err != nil {
			t.Fatalf("load %#x: %v", ch.Addr, err)
		}
	}
	c.PC = entry
	c.NPC = c.PC + 4
	return &engineMachine{c: c, m: m, tl: tl, p: p}
}

// state captures every architecturally visible quantity the
// translation tier could plausibly disturb (the snapshot format of the
// fast-path torture).
func (em *engineMachine) state() string {
	c := em.c
	return fmt.Sprintf("pc=%#x npc=%#x gpr=%v hi=%#x lo=%#x cp0=%v insts=%d cycles=%d writes=%d tlbhits=%d tlbmisses=%d",
		c.PC, c.NPC, c.GPR, c.HI, c.LO, c.CP0, c.Insts, c.Cycles, c.MemWrites, c.TLB.Hits, c.TLB.Misses)
}

// runChunk advances the machine by exactly n instructions; anything
// but budget exhaustion is a test failure.
func runChunk(t *testing.T, c *CPU, n uint64) {
	t.Helper()
	_, err := c.Run(n)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("run: %v (pc=%#x)", err, c.PC)
	}
}

// smcBlockSrc stores into the instruction four words ahead of the
// store — inside the same basic block — toggling the patched addu's rt
// field between s1 (17) and s3 (19), then executes it. A translator
// that lets the stale translation retire the patched slot diverges
// from the interpreter immediately.
const smcBlockSrc = `
	.org 0x80001000
start:
	li   t0, 0x80001040
	li   t2, 0x20000      # rt-field bit: s1 <-> s3
	li   s1, 1
	li   s3, 100
	li   s4, 40           # iterations
	.org 0x80001030
loop:
	lw   t1, 0(t0)
	xor  t1, t1, t2
	sw   t1, 0(t0)        # patches patch:, same page, same block
patch:
	addu s0, s0, s1
	addiu s2, s2, 1
	bne  s2, s4, loop
	nop
spin:
	b    spin
	nop
`

// TestJITSMCInExecutingBlock: a store into the currently-executing
// block must be visible to the very next instruction, exactly as in
// the interpreter.
func TestJITSMCInExecutingBlock(t *testing.T) {
	jit := newEngineMachine(t, smcBlockSrc, 0x80001000, EngineJIT)
	ref := newEngineMachine(t, smcBlockSrc, 0x80001000, EngineInterp)

	const chunk = 61
	for r := 0; r < 8; r++ {
		runChunk(t, jit.c, chunk)
		runChunk(t, ref.c, chunk)
		if j, i := jit.state(), ref.state(); j != i {
			t.Fatalf("round %d: divergence\njit:    %s\ninterp: %s", r, j, i)
		}
	}
	if jit.c.GPR[16] == 0 || jit.c.GPR[16] == jit.c.GPR[18] {
		t.Errorf("patched instruction never alternated: s0=%d s2=%d", jit.c.GPR[16], jit.c.GPR[18])
	}
	if jit.c.JITBlocks == 0 || jit.c.JITExecs == 0 {
		t.Errorf("JIT never engaged: blocks=%d execs=%d", jit.c.JITBlocks, jit.c.JITExecs)
	}
	if jit.c.JITInvalidations == 0 {
		t.Error("in-block patches never invalidated a translation")
	}
}

// asidSrc holds two variants of the same loop at two physical frames;
// the test remaps one virtual page between them under a single reused
// ASID.
const asidSrc = `
	.org 0x80008000
a_loop:
	addiu s0, s0, 1
	addiu s2, s2, 1
	b    a_loop
	nop

	.org 0x80009000
b_loop:
	addiu s0, s0, 2
	addiu s2, s2, 1
	b    b_loop
	nop
`

// TestJITASIDReuseAfterFlush: after the TLB entry for (vpn 4, ASID 5)
// is rewritten to a different frame — a flush plus address-space reuse
// — translated blocks from the old frame must not serve the new one.
// Fetches go through a counted kuseg translation, so TLB hit/miss
// accounting is compared too.
func TestJITASIDReuseAfterFlush(t *testing.T) {
	jit := newEngineMachine(t, asidSrc, 0x4000, EngineJIT)
	ref := newEngineMachine(t, asidSrc, 0x4000, EngineInterp)

	for _, em := range []*engineMachine{jit, ref} {
		em.c.CP0[arch.C0EntryHi] = tlb.MakeHi(0, 5)
		em.tl.WriteIndexed(1, tlb.Entry{Hi: tlb.MakeHi(4, 5), Lo: tlb.MakeLo(8, tlb.LoV|tlb.LoD)})
	}

	const chunk = 97
	for r := uint32(0); r < 20; r++ {
		runChunk(t, jit.c, chunk)
		runChunk(t, ref.c, chunk)
		if j, i := jit.state(), ref.state(); j != i {
			t.Fatalf("round %d: divergence\njit:    %s\ninterp: %s", r, j, i)
		}
		// Flush the mapping and reuse ASID 5 for the other frame.
		frame := uint32(8 + (r+1)%2)
		for _, em := range []*engineMachine{jit, ref} {
			em.tl.WriteIndexed(1, tlb.Entry{Hi: tlb.MakeHi(4, 5), Lo: tlb.MakeLo(frame, tlb.LoV|tlb.LoD)})
		}
	}
	// s0 advanced by 1 under frame 8 and by 2 under frame 9: both
	// variants must actually have run.
	if got := jit.c.GPR[16]; got <= jit.c.GPR[18] || got >= 2*jit.c.GPR[18] {
		t.Errorf("remap never switched code variants: s0=%d s2=%d", got, jit.c.GPR[18])
	}
	if jit.c.JITExecs == 0 {
		t.Error("JIT never engaged through the counted mapping")
	}
	if jit.c.TLB.Hits == 0 {
		t.Error("counted fetches produced no TLB hits")
	}
}

// spanSrc is a loop whose straight-line body crosses from the page at
// 0x1000 into the page at 0x2000; the Go side patches the first word
// of the second page between chunks.
const spanSrc = `
	.org 0x80001fe8
loop:
	addiu s0, s0, 1
	addiu s1, s1, 3
	addu  s2, s2, s0
	xor   s3, s3, s1
	addu  s4, s4, s2
	sltu  t0, s0, s1
	.org 0x80002000
patch:
	addu  s5, s5, s1      # toggled to addu s5, s5, s3 by the test
	addiu s2, s2, 7
	bnez  s0, loop
	nop
`

// TestJITBlockSpansPageGeneration: translation stops at the page
// boundary, so the code above compiles into one block per page; moving
// the second page's generation must invalidate the second block only,
// and the fall-through from the first must observe the patch.
func TestJITBlockSpansPageGeneration(t *testing.T) {
	jit := newEngineMachine(t, spanSrc, 0x80001fe8, EngineJIT)
	ref := newEngineMachine(t, spanSrc, 0x80001fe8, EngineInterp)

	const patchPA = 0x2000
	const chunk = 93
	for r := 0; r < 20; r++ {
		runChunk(t, jit.c, chunk)
		runChunk(t, ref.c, chunk)
		if j, i := jit.state(), ref.state(); j != i {
			t.Fatalf("round %d: divergence\njit:    %s\ninterp: %s", r, j, i)
		}
		for _, em := range []*engineMachine{jit, ref} {
			pg := em.m.PageRef(patchPA)
			pg.SetWord(patchPA, pg.Word(patchPA)^(1<<17)) // rt: s1 <-> s3
		}
	}
	if jit.c.JITInvalidations == 0 {
		t.Error("second-page patches never invalidated a translation")
	}
	if jit.c.JITBlocks < 2 {
		t.Errorf("expected one block per page, compiled %d", jit.c.JITBlocks)
	}
}

// TestEngineToggleTortureLockstep runs the full fast-path torture
// schedule while flipping the engine switch pseudo-randomly between
// jit, fastpath, and interpreter every chunk. Any state the tiers
// disagree on — or any stale micro-TLB/predecode/block state surviving
// a switch — diverges from the NoFastPath reference.
func TestEngineToggleTortureLockstep(t *testing.T) {
	tog := newTortureMachine(t, false)
	ref := newTortureMachine(t, true)

	engines := []Engine{EngineJIT, EngineFast, EngineInterp}
	seen := [3]int{}
	rng := uint32(0x2545f491)
	const chunk = 97
	for r := uint32(0); r < 400; r++ {
		rng = rng*1664525 + 1013904223 // deterministic LCG schedule
		pick := int(rng >> 16 % 3)
		tog.c.Engine = engines[pick]
		seen[pick]++
		for _, tm := range []*tortureMachine{tog, ref} {
			_, err := tm.c.Run(chunk)
			var be *BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("round %d: run ended: %v (pc=%#x)", r, err, tm.c.PC)
			}
		}
		if f, s := tog.snapshot(), ref.snapshot(); f != s {
			t.Fatalf("round %d (engine %d): divergence\ntoggled: %s\nref:     %s", r, tog.c.Engine, f, s)
		}
		tog.tortureMutate(r)
		ref.tortureMutate(r)
	}
	for i, n := range seen {
		if n == 0 {
			t.Fatalf("engine %d never selected by the schedule", i)
		}
	}
	if tog.c.JITExecs == 0 {
		t.Error("toggle schedule never retired a translated block")
	}
	if tog.c.GPR[22] == 0 { // s6: exception count
		t.Error("torture schedule provoked no exceptions")
	}
}
