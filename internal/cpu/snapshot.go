package cpu

// State is a point-in-time copy of the CPU's architectural and
// statistical state, built by CaptureState at a Step boundary. It is
// immutable after capture and safe to share across machines.
//
// Host-side acceleration state is deliberately NOT captured: micro-TLBs
// flush on restore, the predecode cache and translated blocks stay with
// the machine (they are keyed by physical page and revalidate against
// mem.Page.Gen / tlb.TLB.Gen, both of which the memory/TLB restores
// advance — see DESIGN.md §16). Hooks (HCall, Inject, Trace, the UEX
// callbacks), the watchdog, and any attached DebugGuard belong to the
// run, not the state, and are cleared on restore for the owner (the
// kernel, the pool, a debugger) to rewire.
type State struct {
	gpr        [32]uint32
	hi, lo     uint32
	pc, npc    uint32
	cp0        [32]uint32
	xt, xc, xb uint32

	teraMode       bool
	userVector     uint32
	fixedVector    uint32
	hwUTLBMod      bool
	noFastPath     bool
	engine         Engine
	injectUserOnly bool

	cost CostModel

	cycles, insts, memWrites uint64
	fastHits                 uint64
	jitBlocks                uint64
	jitExecs                 uint64
	jitGuardMisses           uint64
	jitInvalidations         uint64
	excCounts                [32]uint64

	halted        bool
	prevWasBranch bool

	countPCs bool
	pcCounts map[uint32]uint64 // deep copy, nil if disabled
}

// Insts returns the captured retired-instruction count (used by the
// record-replay driver to index snapshots by position in the stream).
func (st *State) Insts() uint64 { return st.insts }

// CaptureState snapshots the CPU. It must be called at a Step/Run
// boundary (never from inside a hook), where the transient redirect and
// pending-hook-error state is always quiescent.
func (c *CPU) CaptureState() *State {
	st := &State{
		gpr: c.GPR, hi: c.HI, lo: c.LO,
		pc: c.PC, npc: c.NPC,
		cp0: c.CP0,
		xt:  c.XT, xc: c.XC, xb: c.XB,
		teraMode: c.TeraMode, userVector: c.UserVector, fixedVector: c.FixedVector,
		hwUTLBMod: c.HWUTLBMod, noFastPath: c.NoFastPath,
		engine: c.Engine, injectUserOnly: c.InjectUserOnly,
		cost:   c.Cost,
		cycles: c.Cycles, insts: c.Insts, memWrites: c.MemWrites,
		fastHits:  c.FastHits,
		jitBlocks: c.JITBlocks, jitExecs: c.JITExecs,
		jitGuardMisses: c.JITGuardMisses, jitInvalidations: c.JITInvalidations,
		excCounts: c.ExcCounts,
		halted:    c.Halted, prevWasBranch: c.prevWasBranch,
		countPCs: c.CountPCs,
	}
	if c.PCCounts != nil {
		st.pcCounts = make(map[uint32]uint64, len(c.PCCounts))
		for pc, n := range c.PCCounts {
			st.pcCounts[pc] = n
		}
	}
	return st
}

// RestoreState rewrites the CPU to match the snapshot. Hooks, the
// watchdog, and any DebugGuard are cleared (the caller rewires what the
// next run needs); the micro-TLBs are flushed and re-sync against the
// TLB generation on the next access; the predecode cache and its
// translated blocks are kept, exactly as ResetAll keeps them, because
// the accompanying memory restore advances every dirty page's
// generation and the guards revalidate on next use.
func (c *CPU) RestoreState(st *State) {
	c.GPR, c.HI, c.LO = st.gpr, st.hi, st.lo
	c.PC, c.NPC = st.pc, st.npc
	c.CP0 = st.cp0
	c.XT, c.XC, c.XB = st.xt, st.xc, st.xb
	c.TeraMode, c.UserVector, c.FixedVector = st.teraMode, st.userVector, st.fixedVector
	c.HWUTLBMod = st.hwUTLBMod
	c.NoFastPath = st.noFastPath
	c.Engine = st.engine
	c.InjectUserOnly = st.injectUserOnly
	c.Cost = st.cost
	c.Cycles, c.Insts, c.MemWrites = st.cycles, st.insts, st.memWrites
	c.FastHits = st.fastHits
	c.JITBlocks, c.JITExecs = st.jitBlocks, st.jitExecs
	c.JITGuardMisses, c.JITInvalidations = st.jitGuardMisses, st.jitInvalidations
	c.ExcCounts = st.excCounts
	c.Halted = st.halted
	c.prevWasBranch = st.prevWasBranch
	c.CountPCs = st.countPCs
	c.PCCounts = nil
	if st.pcCounts != nil {
		c.PCCounts = make(map[uint32]uint64, len(st.pcCounts))
		for pc, n := range st.pcCounts {
			c.PCCounts[pc] = n
		}
	}

	c.HCall = nil
	c.OS = nil
	c.Inject = nil
	c.OnUEXRecursion, c.OnUEXClear = nil, nil
	c.Watchdog = nil
	c.Trace = nil
	c.Debug = nil
	c.redirect = false
	c.pendingHookErr = nil
	c.itlbClock, c.dtlbClock = 0, 0
	c.microGen = 0
	c.flushMicroTLB()
}
