package cpu

import (
	"math/rand"
	"testing"

	"uexc/internal/arch"
)

// TestRandomWordExecutionNeverPanics: fill user memory with random
// instruction words and run; every outcome must be an architectural
// exception or normal execution — never a Go panic or simulator error.
func TestRandomWordExecutionNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		tm := newTestMachine(t)
		// Kernel: vector that swallows every exception by skipping the
		// faulting instruction (EPC += 4).
		p := tm.load(`
		.org 0x80000000
		mfc0 k0, c0_epc
		addiu k0, k0, 4
		mtc0 k0, c0_epc
		mfc0 k0, c0_epc
		jr   k0
		rfe
		.org 0x80000080
		mfc0 k0, c0_epc
		addiu k0, k0, 4
		mtc0 k0, c0_epc
		mfc0 k0, c0_epc
		jr   k0
		rfe
		.org 0x80001000
start:
		nop
	`)
		_ = p
		// Random words in a kseg0 code region.
		base := uint32(0x80002000)
		for i := uint32(0); i < 256; i++ {
			if err := tm.m.StoreWord(arch.KSegPhys(base)+4*i, rng.Uint32()); err != nil {
				t.Fatal(err)
			}
		}
		tm.c.PC = base
		tm.c.NPC = base + 4
		// hcall codes invoked by random words may hit the hook; that is
		// fine. Run a bounded number of steps; budget exhaustion is the
		// expected outcome.
		for i := 0; i < 3000 && !tm.c.Halted; i++ {
			if err := tm.c.Step(); err != nil {
				// HCall hook errors are simulator-level and acceptable
				// for random code; anything else would panic above.
				break
			}
		}
	}
}

// TestRandomUserWordsAreContained: random words executed in USER mode
// can only reach user-visible state; the kernel swallows everything and
// the machine stays in a consistent mode.
func TestRandomUserWordsAreContained(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		tm := newTestMachine(t)
		p := tm.load(enterUserHarness + `
		.org 0x4000
user:
		nop
	`)
		_ = p
		// Overwrite the user page with random words (identity mapped by
		// the loader).
		for i := uint32(0); i < 128; i++ {
			if err := tm.m.StoreWord(0x4000+4*i, rng.Uint32()); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 2000 && !tm.c.Halted; i++ {
			if err := tm.c.Step(); err != nil {
				break
			}
		}
		// Whatever happened, kernel-mode invariants hold: the status
		// register's mode stack is well-formed (only defined bits set).
		if sr := tm.c.CP0[arch.C0Status]; sr&^uint32(0x3f|arch.SrUEX|arch.SrBEV|0x20000000) != 0 &&
			sr&0xf0000000 == 0xf0000000 {
			t.Fatalf("status corrupted: %#x", sr)
		}
	}
}
