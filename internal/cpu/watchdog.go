package cpu

import (
	"errors"
	"fmt"

	"uexc/internal/arch"
)

// ErrLivelock and ErrBudget classify Run failures for errors.Is.
var (
	ErrLivelock = errors.New("cpu: livelock")
	ErrBudget   = errors.New("cpu: instruction budget exhausted")
)

// LivelockError reports a detected livelock: the machine revisited an
// identical architectural state without any intervening store or new PC
// coverage, so no further progress is possible.
type LivelockError struct {
	PC     uint32 // anchor PC of the repeating state
	Insts  uint64 // retired instructions when detected
	Window uint64 // quiet instructions observed before detection
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf("cpu: livelock detected at pc %#x after %d instructions (no progress for >= %d)",
		e.PC, e.Insts, e.Window)
}

func (e *LivelockError) Is(target error) bool { return target == ErrLivelock }

// BudgetError reports instruction-budget exhaustion without a detected
// state cycle (the machine was still making some kind of progress).
type BudgetError struct {
	Budget uint64
	PC     uint32
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("cpu: instruction budget %d exhausted at pc %#x", e.Budget, e.PC)
}

func (e *BudgetError) Is(target error) bool { return target == ErrBudget }

// Watchdog detects livelock during CPU.Run. The detector is exact (no
// false positives): it only fires when the complete register-visible
// machine state (PC, GPRs, HI/LO, CP0, XT/XC/XB) recurs at the same
// anchor PC with no store and no new PC coverage in between — a state
// cycle from which the single-core machine cannot escape. A loop that
// still decrements a counter, stores to memory, or reaches new code is
// never flagged; it runs until the instruction budget types it as a
// *BudgetError instead.
type Watchdog struct {
	// Window is the number of quiet instructions (no new PC, no store)
	// required before snapshot comparison begins, and the minimum
	// spacing between comparisons.
	Window uint64

	seen map[uint32]struct{}
	// seenMemo is a direct-mapped membership cache in front of seen: a
	// slot holding pc|1 proves pc is in the map (word-aligned PCs make
	// bit 0 a validity tag). Pure acceleration — a miss falls back to
	// the map, so detection behavior is bit-for-bit unchanged.
	seenMemo   [1024]uint32
	quietSince uint64 // Insts at last sign of progress
	lastWrites uint64
	lastCmp    uint64
	anchor     uint32
	snap       uint64
	snapValid  bool
}

// NewWatchdog returns a watchdog with the given quiet window (0 selects
// the default of 50k instructions).
func NewWatchdog(window uint64) *Watchdog {
	if window == 0 {
		window = 50_000
	}
	return &Watchdog{Window: window, seen: make(map[uint32]struct{})}
}

// Reset forgets all coverage and snapshot state.
func (w *Watchdog) Reset() {
	w.seen = make(map[uint32]struct{})
	w.seenMemo = [1024]uint32{}
	w.quietSince, w.lastWrites, w.lastCmp = 0, 0, 0
	w.snapValid = false
}

// Observe is called after every retired instruction (or taken
// exception); it returns a *LivelockError when a state cycle is proven.
func (w *Watchdog) Observe(c *CPU) error {
	pc := c.PC
	if w.seenMemo[pc>>2&1023] != pc|1 {
		if _, ok := w.seen[pc]; !ok {
			w.seen[pc] = struct{}{}
			w.seenMemo[pc>>2&1023] = pc | 1
			w.quietSince = c.Insts
			w.snapValid = false
			return nil
		}
		w.seenMemo[pc>>2&1023] = pc | 1
	}
	if c.MemWrites != w.lastWrites {
		w.lastWrites = c.MemWrites
		w.quietSince = c.Insts
		w.snapValid = false
		return nil
	}
	if c.Insts-w.quietSince < w.Window {
		return nil
	}
	// Quiet: no new PC and no store for a full window. Compare full
	// state snapshots at a fixed anchor PC, at most once per window.
	if c.Insts-w.lastCmp < w.Window && w.snapValid {
		if pc != w.anchor {
			return nil
		}
		s := w.hash(c)
		if s == w.snap {
			return &LivelockError{PC: pc, Insts: c.Insts, Window: w.Window}
		}
		w.snap = s
		w.lastCmp = c.Insts
		return nil
	}
	// (Re-)anchor at the current PC; if the anchor is never revisited
	// the next window expiry re-anchors again.
	w.anchor = pc
	w.snap = w.hash(c)
	w.snapValid = true
	w.lastCmp = c.Insts
	return nil
}

// hash folds the register-visible machine state into 64 bits (FNV-1a
// over the words; collisions are astronomically unlikely and would only
// cause a spurious livelock report on an already-quiet machine).
func (w *Watchdog) hash(c *CPU) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint32) {
		h ^= uint64(v)
		h *= 1099511628211
	}
	mix(c.PC)
	mix(c.NPC)
	for _, g := range c.GPR {
		mix(g)
	}
	mix(c.HI)
	mix(c.LO)
	mix(c.XT)
	mix(c.XC)
	mix(c.XB)
	for r, v := range c.CP0 {
		if r == arch.C0Random { // free-running; never part of a cycle check
			continue
		}
		mix(v)
	}
	return h
}
