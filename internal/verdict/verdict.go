// Package verdict is the typed outcome taxonomy of the seed-space
// triage engine (DESIGN.md §14). Campaigns classify every run instead
// of crashing or reporting free-text failures: a verdict is a
// deterministic function of the run's digest, rides the journal with
// the digest (so classification survives checkpoint/resume), and is
// what the soak gate aggregates.
//
// The taxonomy, from benign to fatal:
//
//   - Clean: the run converged through a recognized path — clean exit,
//     deterministic signal termination, watchdog livelock detection, or
//     recursion kill — with no failures.
//   - BudgetScaled: the run is clean AND needed the scaled instruction
//     budget (difftest.BudgetFor) above the legacy 3M floor. It exists
//     so budget growth is visible, never silent.
//   - KnownDivergent: the run failed in a way fully attributable to
//     injected state corruption (mem-corrupt, tlb-flip, tlb-stale-asid
//     events before the failure). The canonical case is seed 2227: a
//     corrupted handler counter defeats the program's own runaway
//     bound, so the signal loop is genuinely infinite and budget
//     exhaustion is the correct, deterministic stop. Classified, not
//     failing — but only with the corruption witness in the digest.
//   - EngineBug: everything else — a recovered Go panic, a kernel
//     first-level handler panic (kernel.ErrKernelPanic), an invariant
//     violation, a determinism break, or any unattributable failure.
//     Always failing; the campaign reports it, the process never dies.
//
// Verdicts marshal as strings so NDJSON digests and /metrics stay
// human-readable; the zero value (Clean) is omitted under `omitempty`,
// which keeps journals written before the verdict layer replayable.
package verdict

import (
	"encoding/json"
	"fmt"
)

// Kind is a run's typed classification.
type Kind int

const (
	Clean Kind = iota
	BudgetScaled
	KnownDivergent
	EngineBug
	NumKinds
)

var names = [NumKinds]string{"clean", "budget-scaled", "known-divergent", "engine-bug"}

func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return names[k]
}

// Failing reports whether the verdict fails a campaign. Only EngineBug
// does: Clean and BudgetScaled are successes, and KnownDivergent is a
// classified, witnessed consequence of injected corruption.
func (k Kind) Failing() bool { return k == EngineBug }

// MarshalJSON renders the verdict as its string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	if k < 0 || k >= NumKinds {
		return nil, fmt.Errorf("verdict: cannot marshal %s", k)
	}
	return json.Marshal(names[k])
}

// UnmarshalJSON accepts a verdict name; "" maps to Clean so digests
// journaled before the verdict layer replay unchanged.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	if s == "" {
		*k = Clean
		return nil
	}
	for i, n := range names {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("verdict: unknown kind %q", s)
}

// Counts tallies verdicts by kind, e.g. across a campaign.
type Counts [NumKinds]int

// Add folds one verdict in.
func (c *Counts) Add(k Kind) {
	if k >= 0 && k < NumKinds {
		c[k]++
	}
}

// Total is the number of verdicts folded in.
func (c Counts) Total() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}

// Unclassified reports the count of failing (EngineBug) verdicts — the
// quantity the soak gate requires to be zero.
func (c Counts) Unclassified() int { return c[EngineBug] }
