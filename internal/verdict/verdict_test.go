package verdict

import (
	"encoding/json"
	"testing"
)

func TestStringNames(t *testing.T) {
	want := map[Kind]string{
		Clean: "clean", BudgetScaled: "budget-scaled",
		KnownDivergent: "known-divergent", EngineBug: "engine-bug",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("out-of-range String() = %q", Kind(99).String())
	}
}

func TestOnlyEngineBugFails(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if got, want := k.Failing(), k == EngineBug; got != want {
			t.Errorf("%s.Failing() = %v, want %v", k, got, want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %s: %v", k, err)
		}
		var got Kind
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if got != k {
			t.Errorf("round trip %s -> %s", k, got)
		}
	}
	if _, err := json.Marshal(Kind(99)); err == nil {
		t.Error("marshal of out-of-range kind succeeded")
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"nonsense"`), &k); err == nil {
		t.Error("unmarshal of unknown name succeeded")
	}
}

// TestPreVerdictJournalCompat pins the journal-compat contract: a
// digest written before the verdict layer has no verdict field (or an
// empty one), and must replay as Clean.
func TestPreVerdictJournalCompat(t *testing.T) {
	var s struct {
		V Kind `json:"verdict,omitempty"`
	}
	if err := json.Unmarshal([]byte(`{}`), &s); err != nil || s.V != Clean {
		t.Errorf("missing field: %v, %v", s.V, err)
	}
	if err := json.Unmarshal([]byte(`{"verdict":""}`), &s); err != nil || s.V != Clean {
		t.Errorf("empty field: %v, %v", s.V, err)
	}
}

func TestCounts(t *testing.T) {
	var c Counts
	c.Add(Clean)
	c.Add(Clean)
	c.Add(KnownDivergent)
	c.Add(EngineBug)
	c.Add(Kind(99)) // ignored
	if c.Total() != 4 {
		t.Errorf("Total = %d", c.Total())
	}
	if c.Unclassified() != 1 {
		t.Errorf("Unclassified = %d", c.Unclassified())
	}
	if c[Clean] != 2 || c[KnownDivergent] != 1 {
		t.Errorf("counts = %v", c)
	}
}
