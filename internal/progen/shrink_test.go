package progen

import (
	"strings"
	"testing"

	"uexc/internal/asm"
	"uexc/internal/core"
	"uexc/internal/kernel"
	"uexc/internal/userrt"
)

// TestWithEpisodesIdentity: keeping every episode must reproduce the
// original source byte-for-byte in every mode — the shrinker's
// baseline case, and the pin that the stanza refactor changed nothing.
func TestWithEpisodesIdentity(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := Generate(seed)
		all := make([]int, len(p.Episodes))
		for i := range all {
			all[i] = i
		}
		q := p.WithEpisodes(all)
		for _, mode := range allModes {
			if q.Source(mode, false) != p.Source(mode, false) {
				t.Fatalf("seed %d mode %s: WithEpisodes(all) changed the source", seed, mode)
			}
		}
	}
}

// TestWithEpisodesSubset: a subset keeps exactly the chosen stanzas —
// original labels intact (so a shrunk reproducer names the surviving
// episodes by their original indices) — and still assembles.
func TestWithEpisodesSubset(t *testing.T) {
	p := Generate(11)
	if len(p.Episodes) < 3 {
		t.Fatalf("seed 11 has only %d episodes", len(p.Episodes))
	}
	q := p.WithEpisodes([]int{0, 2})
	if len(q.Episodes) != 2 || q.Episodes[0] != p.Episodes[0] || q.Episodes[1] != p.Episodes[2] {
		t.Fatalf("episodes = %v", q.Episodes)
	}
	for _, mode := range allModes {
		src := q.Source(mode, false)
		if !strings.Contains(src, "dt_ep0:") || !strings.Contains(src, "dt_ep2:") {
			t.Errorf("mode %s: surviving episode labels missing", mode)
		}
		if strings.Contains(src, "dt_ep1:") {
			t.Errorf("mode %s: dropped episode still present", mode)
		}
		if _, err := asm.Assemble(userrt.Prelude()+src, kernel.UserTextBase); err != nil {
			t.Errorf("mode %s: shrunk program does not assemble: %v", mode, err)
		}
	}
}

// TestCountInsts: only instruction lines count — blanks, comments,
// labels, and assembler directives do not, and trailing comments don't
// double-count their line.
func TestCountInsts(t *testing.T) {
	src := `
# a comment
label:
	.align 4
	.word 7
	addiu t0, t0, 1   # trailing comment
	sw t0, 0(t1)

other_label:	addiu t2, t2, 2
`
	// The label-with-instruction line counts once; pure labels and
	// directives count zero.
	if got := CountInsts(src); got != 3 {
		t.Errorf("CountInsts = %d, want 3", got)
	}
}

// TestEmittedInstsTracksExtra: padding a program with N instructions
// raises every mode's emitted count by exactly N — the property the
// scaled budget formula rides on.
func TestEmittedInstsTracksExtra(t *testing.T) {
	const pad = 500
	base := Generate(3)
	padded := Generate(3)
	padded.Extra = strings.Repeat("addiu zero, zero, 0\n", pad)
	for _, mode := range []core.Mode{core.ModeUltrix, core.ModeFast, core.ModeHardware} {
		b, p := base.EmittedInsts(mode), padded.EmittedInsts(mode)
		if b <= 0 {
			t.Fatalf("mode %s: base emitted %d", mode, b)
		}
		if p-b != pad {
			t.Errorf("mode %s: padded-base = %d, want %d", mode, p-b, pad)
		}
	}
}
