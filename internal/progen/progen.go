// Package progen is a seeded, deterministic random program generator
// for the differential-testing oracle (internal/difftest). Each seed
// expands into one exception-rich user program — a randomized sequence
// of fault "episodes" over a fixed data arena — emitted as valid
// internal/asm source in three variants, one per delivery mode
// (core.ModeUltrix / ModeFast / ModeHardware).
//
// The three variants share every byte of workload and handler-policy
// text; only the delivery plumbing differs (signal registration is
// common, the Fast variant claims exceptions with uexc_enable, the
// Hardware variant installs a Tera-style user vector via mtxt and
// direct CPU delivery). The paper's claim that fast delivery
// is semantically equivalent to the Unix signal path — only cheaper —
// therefore becomes checkable: the same workload must produce the same
// architectural outcome under every mode.
//
// Generator grammar (one program = prologue · setup(mode) · zero-regs ·
// episode* · epilogue):
//
//   - break:          a `break` instruction, recovered by skipping.
//   - overflow:       an `add` that overflows, recovered by skipping.
//   - unaligned-load: an lw at addr|2 (AdEL), recovered by skipping;
//     the destination register must keep its pre-fault value.
//   - unaligned-store: an sw at addr|2 (AdES), recovered by skipping;
//     the target word must keep its pre-fault value.
//   - write-prot:     mprotect(page, R) then store (Mod), recovered by
//     un-protecting the faulting page and retrying.
//   - subpage:        subpage_protect 1 KB, store into the protected
//     subpage (Mod), recovered by releasing the subpage protection and
//     the page, then retrying.
//   - delay-slot:     write-protect fault with the store in a branch
//     delay slot (taken and not-taken variants); the retry re-executes
//     the branch, which must be honored exactly once architecturally.
//   - recursion:      write-prot fault whose handler takes a nested
//     breakpoint before recovering — the §2 recursion hazard; under
//     Fast/Hardware this exercises the escalation ladder (demotion to
//     Ultrix delivery), under Ultrix it nests sigcontexts.
//   - compute:        fault-free arithmetic and memory traffic over the
//     arena, so register/memory equivalence has state to bite on.
//
// Every episode's recovery is canonical and idempotent — identical
// assembly in all modes, reached through whichever delivery path the
// mode provides — so each generated program converges to exit 0 with a
// mode-independent architectural state. Episode faults that are skipped
// (break/overflow/unaligned) are never placed in branch delay slots;
// delay-slot episodes use protection faults, whose retry-from-the-
// branch recovery is exact in every mode.
package progen

import (
	"fmt"
	"math/rand"
	"strings"

	"uexc/internal/arch"
	"uexc/internal/core"
)

// Fixed user-space layout of the generated programs. Placing the
// oracle-visible data at fixed .org addresses (inside the text/static
// region, clear of the flowing code) keeps every label and fault
// address identical across the three mode variants even though the
// mode setup stanzas differ in length.
const (
	// DataBase holds the oracle-read bookkeeping: the handler-entry
	// log, counters, and the register dump (one page).
	DataBase = 0x00c00000
	// ArenaBase is the fault arena: ArenaPages pages of zeroed memory
	// the episodes protect, store through, and compute over.
	ArenaBase  = 0x00c10000
	ArenaPages = 4
	// RecPage is the arena page reserved for recursion episodes; the
	// handler policy takes its nested breakpoint only for faults on
	// this page.
	RecPage = ArenaBase + 3*arch.PageSize

	// Data-page offsets (see the .org stanza in Source).
	OffLogLen   = 0x000 // word: number of log entries
	OffLog      = 0x008 // LogCap {cause, badva} word pairs
	OffCount    = 0x700 // word: total policy invocations (bound check)
	OffRecDone  = 0x704 // word: recursion probe fired
	OffChecksum = 0x708 // word: workload accumulator at exit
	OffRegs     = 0x740 // 10 words: s0-s7, hi, lo at exit

	// LogCap bounds the handler-entry log; entries beyond it are
	// counted but not recorded (deterministically, in every mode).
	LogCap = 96

	// maxPolicyEntries bounds total handler entries; a program that
	// exceeds it exits with status 77 instead of spinning.
	maxPolicyEntries = 200
)

// Exception masks per delivery role. The Fast variant claims the
// TLB-type classes (serviced through the kernel fast path, which walks
// page tables per §3.2.2) plus the simple classes (vectored by the
// first-level assembly alone). The Hardware variant delivers every
// intentional class directly — PC/XT exchange, no kernel entry —
// leaving TLB refills and demand paging to the kernel as the Tera
// design does.
const (
	tlbMask    = 1<<arch.ExcMod | 1<<arch.ExcTLBL | 1<<arch.ExcTLBS
	simpleMask = 1<<arch.ExcAdEL | 1<<arch.ExcAdES | 1<<arch.ExcBp | 1<<arch.ExcOv
)

// HWVector is the Tera-style user-vector mask the Hardware variant
// needs enabled on the CPU (core.Machine.EnableHardwareDelivery).
const HWVector = 1<<arch.ExcMod | simpleMask

// Kind enumerates episode kinds for campaign tallies.
type Kind int

const (
	KindBreak Kind = iota
	KindOverflow
	KindUnalignedLoad
	KindUnalignedStore
	KindWriteProt
	KindSubpage
	KindDelaySlot
	KindRecursion
	KindCompute
	NumKinds
)

var kindNames = [NumKinds]string{
	"break", "overflow", "unaligned-load", "unaligned-store",
	"write-prot", "subpage", "delay-slot", "recursion", "compute",
}

func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Program is one generated workload, expandable per delivery mode.
type Program struct {
	Seed     int64
	Episodes []Kind
	Eager    bool // §3.2.3 eager amplification requested via syscall

	// Extra is appended verbatim after the workload episodes (and before
	// the epilogue) in every mode's Source. Generate never sets it, so
	// existing seeds render unchanged; campaign variants (the SMC
	// differential probe) use it to graft mode-independent stanzas onto
	// a generated program.
	Extra string

	// stanzas holds one mode-independent assembly stanza per episode,
	// parallel to Episodes; their concatenation is the workload text.
	// Keeping episodes discrete is what makes programs shrinkable: any
	// subset of stanzas is itself a valid program (stanzas are
	// self-contained — every label an episode references carries its
	// original episode index, so dropping neighbours cannot collide).
	stanzas []string
}

// workload is the concatenated episode text, byte-identical to the
// single-builder emission the stanza split replaced.
func (p *Program) workload() string { return strings.Join(p.stanzas, "") }

// Generate expands a seed into a program. The same seed always yields
// the same program (math/rand with a fixed Source; no global state).
func Generate(seed int64) *Program {
	r := rand.New(rand.NewSource(seed))
	p := &Program{Seed: seed, Eager: r.Intn(2) == 1}

	n := 4 + r.Intn(9) // 4..12 episodes
	recursions := 0
	for i := 0; i < n; i++ {
		k := Kind(r.Intn(int(NumKinds)))
		if k == KindRecursion {
			if recursions >= 1 {
				// The escalation ladder kills a process after a few
				// recursions; one probe per program keeps every mode
				// on the survivable rungs.
				k = KindWriteProt
			} else {
				recursions++
			}
		}
		p.Episodes = append(p.Episodes, k)
		var b strings.Builder
		emitEpisode(&b, r, i, k)
		p.stanzas = append(p.stanzas, b.String())
	}
	return p
}

// WithEpisodes returns a new program containing only the episodes at
// the given (ascending) indices of p, sharing their stanza text
// verbatim. The subset is a valid program: stanza labels carry their
// original episode index, so the text never collides, and every
// episode's recovery is self-contained. The shrinker bisects over this.
func (p *Program) WithEpisodes(keep []int) *Program {
	q := &Program{Seed: p.Seed, Eager: p.Eager, Extra: p.Extra}
	for _, i := range keep {
		q.Episodes = append(q.Episodes, p.Episodes[i])
		q.stanzas = append(q.stanzas, p.stanzas[i])
	}
	return q
}

// Source renders the program for one delivery mode. mutate, when true,
// substitutes a deliberately wrong handler policy (the recorded cause
// codes are offset) — the oracle self-test uses it to prove a semantic
// divergence in a single mode is detected.
func (p *Program) Source(mode core.Mode, mutate bool) string {
	var b strings.Builder
	b.WriteString(sourceHeader)
	b.WriteString(prologue)
	b.WriteString(setupStanza(mode))
	b.WriteString(zeroRegs)
	b.WriteString(p.workload())
	b.WriteString(p.Extra)
	b.WriteString(epilogue)
	if mutate {
		b.WriteString(strings.Replace(policyText, "dt_log_store_cause:\n\tsw    a0, 0(t4)",
			"dt_log_store_cause:\n\taddiu t5, a0, 32\n\tsw    t5, 0(t4)", 1))
	} else {
		b.WriteString(policyText)
	}
	if mode == core.ModeHardware {
		b.WriteString(teraWrapper)
	}
	b.WriteString(dataStanza)
	return b.String()
}

// CountInsts counts the instruction lines of an assembly text: lines
// that are not blank, not comments, not labels, and not directives.
// Pseudo-instructions (li, la) count as one even when the assembler
// expands them to two — the count is a deterministic program-size
// proxy for budget scaling (difftest.BudgetFor), not an exact word
// count, and it must be cheap enough to run per shard.
func CountInsts(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if i := strings.IndexByte(s, '#'); i >= 0 {
			s = strings.TrimSpace(s[:i])
		}
		if s == "" || s[0] == '.' || strings.HasSuffix(s, ":") {
			continue
		}
		n++
	}
	return n
}

// EmittedInsts is the instruction-line count of the program's full
// source for one mode — the size the scaled run budget is computed
// from. Mode matters: the setup stanza and the Hardware variant's
// Tera wrapper differ per mode.
func (p *Program) EmittedInsts(mode core.Mode) int {
	return CountInsts(p.Source(mode, false))
}

// sourceHeader defines the layout constants the stanzas below use.
var sourceHeader = fmt.Sprintf(`
	.equ DT_DATA,   %#x
	.equ DT_ARENA,  %#x
	.equ DT_RECPAGE,%#x
	.equ DT_LOGCAP, %d
	.equ DT_MAXENT, %d
`, DataBase, ArenaBase, RecPage, LogCap, maxPolicyEntries)

// prologue opens main and registers the Unix fallback handlers every
// mode needs (Ultrix as the primary path, Fast/Hardware for the
// escalation ladder's demotions).
const prologue = `
main:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	li    a0, 5                # SIGTRAP (breakpoints)
	la    a1, dt_sighandler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	li    a0, 8                # SIGFPE (overflow)
	la    a1, dt_sighandler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	li    a0, 10               # SIGBUS (unaligned)
	la    a1, dt_sighandler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	li    a0, 11               # SIGSEGV (protection)
	la    a1, dt_sighandler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
`

// setupStanza is the only mode-dependent text.
func setupStanza(mode core.Mode) string {
	eager := `
	li    a0, 1
	li    v0, SYS_uexc_eager
	syscall
	nop
`
	switch mode {
	case core.ModeFast:
		return fmt.Sprintf(`
	la    t0, dt_chandler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, %#x
	jal   __uexc_enable
	nop
`, tlbMask|simpleMask) + eager
	case core.ModeHardware:
		return `
	la    t0, dt_chandler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    t0, dt_tera_handler
	mtxt  t0
` + eager
	default: // ModeUltrix: signals only; the eager flag is set for
		// syscall symmetry but never consulted outside the fast path.
		return eager
	}
}

// zeroRegs scrubs every register the setup stanzas may have touched so
// the workload starts from one register state in all three modes (the
// oracle compares the full file, minus kernel scratch, at exit).
const zeroRegs = `
	move  at, zero
	move  v0, zero
	move  v1, zero
	move  a0, zero
	move  a1, zero
	move  a2, zero
	move  a3, zero
	move  t0, zero
	move  t1, zero
	move  t2, zero
	move  t3, zero
	move  t4, zero
	move  t5, zero
	move  t6, zero
	move  t7, zero
	move  t8, zero
	move  t9, zero
	move  s0, zero
	move  s1, zero
	move  s2, zero
	move  s3, zero
	move  s4, zero
	move  s5, zero
	move  s6, zero
	move  s7, zero
	move  gp, zero
	move  fp, zero
	mthi  zero
	mtlo  zero
`

// epilogue dumps the oracle-visible register state and exits 0. The
// raw register file is also compared at halt; the dump makes the
// callee-saved story visible in the memory image too.
// SMCStanza is a self-modifying-code episode for Program.Extra: it
// plants a three-word thunk in the fault arena, calls it, patches its
// first instruction in place, and calls it again, folding both return
// values into the s1 accumulator. Every delivery mode must observe the
// patched instruction on the second call — an interpreter that caches
// decoded instructions without watching for stores diverges here. The
// stanza is mode-independent; arena collisions with episode stores or
// mprotect episodes only change what the thunk computes, identically in
// every mode.
const SMCStanza = `
# extra episode: self-modifying code probe
dt_smc:
	la    t0, dt_smc_src
	li    t1, DT_ARENA + 0x2f80
	lw    t2, 0(t0)
	sw    t2, 0(t1)
	lw    t2, 4(t0)
	sw    t2, 4(t1)
	lw    t2, 8(t0)
	sw    t2, 8(t1)
	jalr  t1                   # first call: v1 = 7
	nop
	addu  s1, s1, v1
	lw    t2, 12(t0)
	sw    t2, 0(t1)            # patch: addiu v1, zero, 7 -> 1234
	jalr  t1                   # second call must see the patch
	nop
	addu  s1, s1, v1
	b     dt_smc_done
	nop
dt_smc_src:
	addiu v1, zero, 7
	jr    ra
	nop
	addiu v1, zero, 1234
dt_smc_done:
	addiu s0, s0, 1
`

const epilogue = `
	la    t0, DT_DATA + 0x740
	sw    s0, 0(t0)
	sw    s1, 4(t0)
	sw    s2, 8(t0)
	sw    s3, 12(t0)
	sw    s4, 16(t0)
	sw    s5, 20(t0)
	sw    s6, 24(t0)
	sw    s7, 28(t0)
	mfhi  t1
	sw    t1, 32(t0)
	mflo  t1
	sw    t1, 36(t0)
	la    t0, DT_DATA + 0x708
	sw    s1, 0(t0)
	li    a0, 1
	la    a1, dt_msg
	li    a2, 3
	li    v0, SYS_write
	syscall
	nop
	# Scrub scratch registers: dt_msg's address (and anything else in
	# the caller-saved set) shifts with the mode stanza's code size, so
	# leaving it in a register would read as a spurious divergence.
	move  at, zero
	move  v1, zero
	move  a0, zero
	move  a1, zero
	move  a2, zero
	move  a3, zero
	move  t0, zero
	move  t1, zero
	move  t2, zero
	move  t3, zero
	move  t4, zero
	move  t5, zero
	move  t6, zero
	move  t7, zero
	move  t8, zero
	move  t9, zero
	lw    ra, 0(sp)
	addiu sp, sp, 16
	li    v0, 0
	jr    ra
	nop
`

// emitEpisode appends one episode's assembly. Accumulator register is
// s1; s0 holds a rolling episode counter; t-registers are scratch.
func emitEpisode(b *strings.Builder, r *rand.Rand, i int, k Kind) {
	fmt.Fprintf(b, "\n# episode %d: %s\ndt_ep%d:\n", i, k, i)
	page := r.Intn(ArenaPages - 1) // pages 0..2; page 3 is the recursion page
	wordOff := 4 * r.Intn(arch.PageSize/4-2)
	val := r.Int31()

	switch k {
	case KindBreak:
		fmt.Fprintf(b, `	break
	addiu s0, s0, 1
	addiu s1, s1, %d
`, r.Intn(255)+1)

	case KindOverflow:
		// 0x7fffffff + positive, or 0x80000000 + negative: guaranteed
		// signed overflow; the destination keeps its sentinel.
		sentinel := r.Int31()
		if r.Intn(2) == 0 {
			fmt.Fprintf(b, `	li    t1, 0x7fffffff
	li    t2, %d
	li    t3, %d
	add   t3, t1, t2           # Ov: skipped, t3 keeps the sentinel
	addu  s1, s1, t3
`, r.Intn(1<<20)+1, sentinel)
		} else {
			fmt.Fprintf(b, `	li    t1, 0x80000000
	li    t2, -%d
	li    t3, %d
	add   t3, t1, t2           # Ov: skipped, t3 keeps the sentinel
	addu  s1, s1, t3
`, r.Intn(1<<20)+1, sentinel)
		}

	case KindUnalignedLoad:
		fmt.Fprintf(b, `	li    t3, %d
	li    t2, DT_ARENA + %d + %d
	lw    t3, 0(t2)            # AdEL: skipped, t3 keeps the sentinel
	addu  s1, s1, t3
`, val, page*arch.PageSize+wordOff, 1+r.Intn(3))

	case KindUnalignedStore:
		fmt.Fprintf(b, `	li    t1, %d
	li    t2, DT_ARENA + %d + %d
	sw    t1, 0(t2)            # AdES: skipped, memory keeps its value
	li    t2, DT_ARENA + %d
	lw    t3, 0(t2)
	addu  s1, s1, t3
`, val, page*arch.PageSize+wordOff, 1+r.Intn(3), page*arch.PageSize+wordOff)

	case KindWriteProt:
		fmt.Fprintf(b, `	li    a0, DT_ARENA + %d
	li    a1, 4096
	li    a2, 1                # PROT_READ: arm the write-protect fault
	li    v0, SYS_mprotect
	syscall
	nop
	li    t1, %d
	li    t2, DT_ARENA + %d
	sw    t1, 0(t2)            # Mod: handler un-protects, store retries
	lw    t3, 0(t2)
	addu  s1, s1, t3
`, page*arch.PageSize, val, page*arch.PageSize+wordOff)

	case KindSubpage:
		sub := r.Intn(arch.PageSize / arch.SubpageSize)
		inOff := 4 * r.Intn(arch.SubpageSize/4)
		fmt.Fprintf(b, `	li    a0, DT_ARENA + %d
	li    a1, %d
	li    a2, 0                # protect one 1 KB subpage
	li    v0, SYS_subpage
	syscall
	nop
	li    t1, %d
	li    t2, DT_ARENA + %d
	sw    t1, 0(t2)            # Mod on the protected subpage: delivered
	lw    t3, 0(t2)
	addu  s1, s1, t3
`, page*arch.PageSize+sub*arch.SubpageSize, arch.SubpageSize, val,
			page*arch.PageSize+sub*arch.SubpageSize+inOff)

	case KindDelaySlot:
		taken := r.Intn(2)
		fmt.Fprintf(b, `	li    a0, DT_ARENA + %d
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect
	syscall
	nop
	li    t1, %d
	li    t2, DT_ARENA + %d
	li    t3, %d
	bnez  t3, dt_ep%d_taken
	sw    t1, 0(t2)            # Mod in the delay slot: retry re-runs the branch
	addiu s1, s1, 7
	b     dt_ep%d_join
	nop
dt_ep%d_taken:
	addiu s1, s1, 13
dt_ep%d_join:
	lw    t4, 0(t2)
	addu  s1, s1, t4
`, page*arch.PageSize, val, page*arch.PageSize+wordOff, taken, i, i, i, i)

	case KindRecursion:
		fmt.Fprintf(b, `	li    a0, DT_RECPAGE
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect
	syscall
	nop
	li    t1, %d
	li    t2, DT_RECPAGE + %d
	sw    t1, 0(t2)            # Mod whose handler breaks before recovering
	lw    t3, 0(t2)
	addu  s1, s1, t3
`, val, wordOff)

	case KindCompute:
		ops := 2 + r.Intn(5)
		for j := 0; j < ops; j++ {
			off := page*arch.PageSize + 4*r.Intn(arch.PageSize/4)
			switch r.Intn(4) {
			case 0:
				fmt.Fprintf(b, "\tli    t1, %d\n\tli    t2, DT_ARENA + %d\n\tsw    t1, 0(t2)\n", r.Int31(), off)
			case 1:
				fmt.Fprintf(b, "\tli    t2, DT_ARENA + %d\n\tlw    t3, 0(t2)\n\taddu  s1, s1, t3\n", off)
			case 2:
				fmt.Fprintf(b, "\tli    t1, %d\n\txor   s1, s1, t1\n", r.Int31())
			case 3:
				fmt.Fprintf(b, "\tli    t1, %d\n\tmult  s1, t1\n\tmflo  t4\n\taddu  s1, s1, t4\n", r.Intn(1<<16)+3)
			}
		}
		fmt.Fprintf(b, "\tsll   s2, s1, %d\n\taddu  s3, s3, s2\n", 1+r.Intn(7))
	}
}

// policyText is the shared handler stack: dt_chandler receives the
// fast/hardware exception frame (a0), dt_sighandler the Unix triple
// (sig, code, scp); both normalize to (code, badva), call dt_policy,
// and apply its skip verdict to their frame's saved EPC. dt_policy and
// its callees restrict themselves to the frame-saved register set
// {at, v0, v1, a0-a3, t0-t5, ra} plus the stack, the contract the
// minimal Tera wrapper imposes (callee-saved state is not re-saved).
const policyText = `
# --- C-level handler for the Fast and Hardware paths ------------------
dt_chandler:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	sw    a0, 4(sp)            # frame VA
	lw    t0, 0x04(a0)         # FrCause
	srl   t0, t0, 2
	andi  t0, t0, 31
	lw    a1, 0x08(a0)         # FrBadVAddr
	move  a0, t0
	jal   dt_policy
	nop
	beqz  v0, dt_ch_done
	nop
	lw    t0, 4(sp)
	lw    t1, 0(t0)            # FrEPC
	addiu t1, t1, 4
	sw    t1, 0(t0)            # skip the faulting instruction
dt_ch_done:
	lw    ra, 0(sp)
	addiu sp, sp, 16
	jr    ra
	nop

# --- Unix signal handler (Ultrix path and demotion fallback) ----------
dt_sighandler:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	sw    a2, 4(sp)            # sigcontext
	move  a0, a1               # exception code (raw)
	lw    a1, 132(a2)          # TfBadVA
	jal   dt_policy
	nop
	beqz  v0, dt_sig_done
	nop
	lw    t0, 4(sp)
	lw    t1, 124(t0)          # TfEPC
	addiu t1, t1, 4
	sw    t1, 124(t0)
dt_sig_done:
	lw    ra, 0(sp)
	addiu sp, sp, 16
	jr    ra
	nop

# --- Shared policy: a0 = code, a1 = badva; returns v0 = 1 to skip the
# --- faulting instruction, 0 to retry it after recovery ---------------
dt_policy:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	# BadVAddr is architectural only for address/protection faults;
	# zero it otherwise so stale values never enter the log.
	li    t0, 9                # Bp
	beq   a0, t0, dt_pol_zbv
	nop
	li    t0, 12               # Ov
	bne   a0, t0, dt_pol_bvok
	nop
dt_pol_zbv:
	move  a1, zero
dt_pol_bvok:
	sw    a0, 4(sp)
	sw    a1, 8(sp)
	# Bound total handler entries: a runaway delivery loop exits 77
	# deterministically instead of burning the budget.
	la    t0, DT_DATA + 0x700
	lw    t1, 0(t0)
	addiu t1, t1, 1
	sw    t1, 0(t0)
	sltiu t2, t1, DT_MAXENT
	bnez  t2, dt_pol_log
	nop
	li    a0, 77
	li    v0, SYS_exit
	syscall
	nop
dt_pol_log:
	# Append (code, badva) to the handler-entry log.
	la    t0, DT_DATA + 0x000
	lw    t1, 0(t0)
	sltiu t2, t1, DT_LOGCAP
	beqz  t2, dt_pol_nolog
	nop
	sll   t3, t1, 3
	la    t4, DT_DATA + 0x008
	addu  t4, t4, t3
dt_log_store_cause:
	sw    a0, 0(t4)
	sw    a1, 4(t4)
	addiu t1, t1, 1
	sw    t1, 0(t0)
dt_pol_nolog:
	# Protection faults (Mod) are recovered by un-protecting and
	# retrying; everything else is recovered by skipping.
	li    t0, 1                # Mod
	lw    t1, 4(sp)
	bne   t1, t0, dt_pol_skip
	nop
	# Recursion probe: the first Mod on the reserved page takes a
	# nested breakpoint while this handler is still in progress.
	lw    t2, 8(sp)
	srl   t3, t2, 12
	li    t4, DT_RECPAGE >> 12
	bne   t3, t4, dt_pol_unprot
	nop
	la    t0, DT_DATA + 0x704
	lw    t1, 0(t0)
	bnez  t1, dt_pol_unprot
	nop
	li    t1, 1
	sw    t1, 0(t0)
	break                      # nested fault inside the handler
dt_pol_unprot:
	# Canonical idempotent recovery: release any subpage protection on
	# the faulting page, then return the page to read-write.
	lw    a0, 8(sp)
	srl   a0, a0, 12
	sll   a0, a0, 12
	li    a1, 4096
	li    a2, 3
	li    v0, SYS_subpage
	syscall
	nop
	lw    a0, 8(sp)
	srl   a0, a0, 12
	sll   a0, a0, 12
	li    a1, 4096
	li    a2, 3
	li    v0, SYS_mprotect
	syscall
	nop
	move  v0, zero             # retry the faulting instruction
	b     dt_pol_ret
	nop
dt_pol_skip:
	li    v0, 1
dt_pol_ret:
	lw    ra, 0(sp)
	addiu sp, sp, 16
	jr    ra
	nop

dt_msg:
	.ascii "ok\n"
	.align 4
`

// teraWrapper is the Hardware variant's low-level handler: the CPU
// vectored here directly (no kernel entry), so it saves the same frame
// layout the kernel fast path builds — including the cause and bad-
// address condition registers — calls the common C handler, restores,
// and return-exchanges through XT.
const teraWrapper = `
dt_tera_ret:
	xret
dt_tera_handler:
	la    k1, dt_tera_frame
	mfxt  k0
	sw    k0, 0x00(k1)         # FrEPC
	mfxc  k0
	sw    k0, 0x04(k1)         # FrCause
	mfxb  k0
	sw    k0, 0x08(k1)         # FrBadVAddr
	sw    at, 0x0c(k1)
	sw    v0, 0x10(k1)
	sw    v1, 0x14(k1)
	sw    a0, 0x18(k1)
	sw    a1, 0x1c(k1)
	sw    a2, 0x20(k1)
	sw    a3, 0x24(k1)
	sw    t0, 0x28(k1)
	sw    t1, 0x2c(k1)
	sw    t2, 0x30(k1)
	sw    t3, 0x34(k1)
	sw    t4, 0x3c(k1)
	sw    t5, 0x40(k1)
	sw    ra, 0x44(k1)
	move  t0, k1
	move  a0, t0
	la    t3, __fexc_chandler
	lw    t3, 0(t3)
	jalr  t3
	nop
dt_tera_handler_ret:
	la    t0, dt_tera_frame    # the C handler may have clobbered t0
	lw    k0, 0x00(t0)
	mtxt  k0
	lw    at, 0x0c(t0)
	lw    v0, 0x10(t0)
	lw    v1, 0x14(t0)
	lw    a0, 0x18(t0)
	lw    a1, 0x1c(t0)
	lw    a2, 0x20(t0)
	lw    a3, 0x24(t0)
	lw    t1, 0x2c(t0)
	lw    t2, 0x30(t0)
	lw    t3, 0x34(t0)
	lw    t4, 0x3c(t0)
	lw    t5, 0x40(t0)
	lw    ra, 0x44(t0)
	lw    t0, 0x28(t0)
	b     dt_tera_ret
	nop
	.align 8
dt_tera_frame:
	.space 128
`

// dataStanza reserves the oracle-visible regions at their fixed
// addresses (mode-independent by construction).
var dataStanza = fmt.Sprintf(`
	.org  %#x
dt_data:
	.space 4096
	.org  %#x
dt_arena:
	.space %d
`, DataBase, ArenaBase, ArenaPages*arch.PageSize)
