package progen

import (
	"strings"
	"testing"

	"uexc/internal/asm"
	"uexc/internal/core"
	"uexc/internal/kernel"
	"uexc/internal/userrt"
)

var allModes = []core.Mode{core.ModeUltrix, core.ModeFast, core.ModeHardware}

// TestDeterministic: the same seed must expand to byte-identical source
// in every mode — the oracle's replay discipline depends on it.
func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, b := Generate(seed), Generate(seed)
		if len(a.Episodes) != len(b.Episodes) {
			t.Fatalf("seed %d: episode counts differ", seed)
		}
		for _, mode := range allModes {
			if a.Source(mode, false) != b.Source(mode, false) {
				t.Fatalf("seed %d mode %s: sources differ across generations", seed, mode)
			}
		}
	}
}

// TestEpisodeBounds: programs stay within the documented grammar — 4 to
// 12 episodes, at most one recursion probe.
func TestEpisodeBounds(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p := Generate(seed)
		if n := len(p.Episodes); n < 4 || n > 12 {
			t.Errorf("seed %d: %d episodes, want 4..12", seed, n)
		}
		recs := 0
		for _, k := range p.Episodes {
			if k == KindRecursion {
				recs++
			}
			if k < 0 || k >= NumKinds {
				t.Errorf("seed %d: invalid kind %d", seed, int(k))
			}
		}
		if recs > 1 {
			t.Errorf("seed %d: %d recursion episodes, want <= 1", seed, recs)
		}
	}
}

// TestAssembles: every variant of the first 50 seeds must be valid
// internal/asm source when linked against the user runtime.
func TestAssembles(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := Generate(seed)
		for _, mode := range allModes {
			src := userrt.Prelude() + p.Source(mode, false)
			if _, err := asm.Assemble(src, kernel.UserTextBase); err != nil {
				t.Fatalf("seed %d mode %s does not assemble: %v", seed, mode, err)
			}
		}
	}
}

// TestKindCoverage: across a modest seed range every episode kind must
// appear — a generator that silently stops emitting a kind hollows out
// the oracle.
func TestKindCoverage(t *testing.T) {
	var seen [NumKinds]int
	for seed := int64(0); seed < 100; seed++ {
		for _, k := range Generate(seed).Episodes {
			seen[k]++
		}
	}
	for k := Kind(0); k < NumKinds; k++ {
		if seen[k] == 0 {
			t.Errorf("kind %s never generated in 100 seeds", k)
		}
	}
}

// TestMutationChangesHandler: the mutated variant must differ exactly
// in the handler policy (the oracle self-test injects it into a single
// mode and asserts detection).
func TestMutationChangesHandler(t *testing.T) {
	p := Generate(7)
	for _, mode := range allModes {
		clean, bad := p.Source(mode, false), p.Source(mode, true)
		if clean == bad {
			t.Fatalf("mode %s: mutation did not change the source", mode)
		}
		if !strings.Contains(bad, "addiu t5, a0, 32") {
			t.Fatalf("mode %s: mutated cause-offset sequence missing", mode)
		}
		src := userrt.Prelude() + bad
		if _, err := asm.Assemble(src, kernel.UserTextBase); err != nil {
			t.Fatalf("mode %s: mutated source does not assemble: %v", mode, err)
		}
	}
}

// TestModeVariantsShareWorkload: the mode stanzas must be the only
// difference — every episode label appears identically in all three
// variants, and the data stanza pins the oracle regions.
func TestModeVariantsShareWorkload(t *testing.T) {
	p := Generate(11)
	for i := range p.Episodes {
		label := "dt_ep" + itoa(i) + ":"
		for _, mode := range allModes {
			if !strings.Contains(p.Source(mode, false), label) {
				t.Errorf("mode %s: missing episode label %q", mode, label)
			}
		}
	}
	for _, mode := range allModes {
		src := p.Source(mode, false)
		for _, want := range []string{"dt_data:", "dt_arena:", "dt_policy:", "dt_sighandler:"} {
			if !strings.Contains(src, want) {
				t.Errorf("mode %s: missing %q", mode, want)
			}
		}
	}
	if !strings.Contains(p.Source(core.ModeHardware, false), "dt_tera_handler:") {
		t.Error("hardware variant missing the tera wrapper")
	}
	if strings.Contains(p.Source(core.ModeUltrix, false), "dt_tera_handler:") {
		t.Error("ultrix variant should not carry the tera wrapper")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
