// Package swizzle implements the paper's §4.2.2 application study: a
// persistent object store whose on-disk pointers (object identifiers)
// must be converted — "swizzled" — to in-memory addresses when used.
//
// Two detection mechanisms find unswizzled pointers:
//
//   - DetectChecks: the compiler inserts a residency check before every
//     pointer dereference (c cycles each, used or not);
//   - DetectFaults: unswizzled pointers are represented as unaligned
//     addresses; the first dereference faults, the handler loads the
//     object and repairs the pointer, and subsequent uses are free.
//
// Two swizzling policies decide when pointers inside a newly loaded
// page are converted:
//
//   - Lazy: each pointer swizzles on first use (one fault per pointer);
//   - Eager: all pointers in the page swizzle at load time (one fault
//     per page, pn swizzles up front).
//
// Traversals produce identical results under every configuration; only
// the virtual-cycle cost differs. Figures 3 and 4 are validated by
// sweeping the relevant parameter and locating the empirical crossover.
package swizzle

import (
	"errors"
	"fmt"
	"math/rand"

	"uexc/internal/simos"
)

// ErrDiverged reports that two configurations which must produce
// identical traversal results (mechanisms change cost, never answers —
// DESIGN.md §6) disagreed on a checksum.
var ErrDiverged = errors.New("swizzle: traversal results diverged")

// Detect selects the residency-detection mechanism.
type Detect int

const (
	DetectChecks Detect = iota
	DetectFaults
)

// Policy selects when pointers are swizzled.
type Policy int

const (
	Lazy Policy = iota
	Eager
)

// OID names an object on disk: page and index within the page.
type OID struct {
	Page int32
	Idx  int32
}

// DiskObject is an object in the persistent store.
type DiskObject struct {
	Data uint32
	Ptrs []OID
}

// Disk is the persistent store: pages of objects.
type Disk struct {
	Pages [][]DiskObject
}

// NewGraphDisk builds a store of nPages pages with objsPerPage objects,
// each carrying ptrsPerObj pointers to uniformly random objects.
func NewGraphDisk(nPages, objsPerPage, ptrsPerObj int, seed int64) *Disk {
	rng := rand.New(rand.NewSource(seed))
	d := &Disk{Pages: make([][]DiskObject, nPages)}
	for p := range d.Pages {
		objs := make([]DiskObject, objsPerPage)
		for i := range objs {
			objs[i].Data = uint32(p*objsPerPage + i)
			objs[i].Ptrs = make([]OID, ptrsPerObj)
			for j := range objs[i].Ptrs {
				objs[i].Ptrs[j] = OID{
					Page: int32(rng.Intn(nPages)),
					Idx:  int32(rng.Intn(objsPerPage)),
				}
			}
		}
		d.Pages[p] = objs
	}
	return d
}

// Config parameterizes a session.
type Config struct {
	Detect Detect
	Policy Policy

	// TrapMicros is the cost of one detection fault (the measured
	// specialized-handler unaligned fault, §4.2.2: 6 µs fast, ~80 µs
	// Ultrix). SwizzleMicros is the per-pointer swizzle work s;
	// CheckCycles is the per-dereference residency check c.
	TrapMicros    float64
	SwizzleMicros float64
	CheckCycles   float64
}

// ptrSite names a pointer field instance.
type ptrSite struct {
	page int32
	idx  int32
	slot int32
}

// Stats tallies a session.
type Stats struct {
	Derefs      uint64
	Checks      uint64
	Faults      uint64
	Swizzles    uint64
	PagesLoaded uint64
}

// Session is an open store with in-memory residency state.
type Session struct {
	cfg   Config
	disk  *Disk
	clock simos.Clock

	resident map[int32]bool
	swizzled map[ptrSite]bool
	stats    Stats
}

// Open starts a session against a disk image.
func Open(d *Disk, cfg Config) *Session {
	return &Session{
		cfg:      cfg,
		disk:     d,
		resident: make(map[int32]bool),
		swizzled: make(map[ptrSite]bool),
	}
}

// Stats returns session statistics.
func (s *Session) Stats() Stats { return s.stats }

// Clock returns the virtual clock.
func (s *Session) Clock() *simos.Clock { return &s.clock }

func (s *Session) chargeMicros(us float64) { s.clock.Charge(us * 25) }

// loadPage makes a page resident, applying the eager policy if
// configured.
func (s *Session) loadPage(page int32) {
	if s.resident[page] {
		return
	}
	s.resident[page] = true
	s.stats.PagesLoaded++
	if s.cfg.Policy == Eager {
		// Figure 4's eager model: the page is brought in by a single
		// access fault (t), then every pointer in it is swizzled up
		// front (pn·s). Under lazy, the load is a side effect of a
		// pointer fault that was already charged.
		if s.cfg.Detect == DetectFaults {
			s.stats.Faults++
			s.chargeMicros(s.cfg.TrapMicros)
		}
		// Swizzle every pointer in the page now.
		for i := range s.disk.Pages[page] {
			for j := range s.disk.Pages[page][i].Ptrs {
				site := ptrSite{page, int32(i), int32(j)}
				if !s.swizzled[site] {
					s.swizzled[site] = true
					s.stats.Swizzles++
					s.chargeMicros(s.cfg.SwizzleMicros)
				}
			}
		}
	}
}

// Deref follows the pointer in the given object slot and returns the
// target OID, charging per the configured mechanism. The containing
// page must be resident.
func (s *Session) Deref(obj OID, slot int) (OID, error) {
	if !s.resident[obj.Page] {
		return OID{}, fmt.Errorf("swizzle: deref in non-resident page %d", obj.Page)
	}
	s.stats.Derefs++
	target := s.disk.Pages[obj.Page][obj.Idx].Ptrs[slot]
	site := ptrSite{obj.Page, obj.Idx, int32(slot)}

	switch s.cfg.Detect {
	case DetectChecks:
		// A check precedes every dereference, swizzled or not.
		s.stats.Checks++
		s.clock.Charge(s.cfg.CheckCycles)
		if !s.swizzled[site] {
			s.loadPage(target.Page)
			s.swizzled[site] = true
			s.stats.Swizzles++
			s.chargeMicros(s.cfg.SwizzleMicros)
		}
	case DetectFaults:
		if !s.swizzled[site] {
			// Unaligned dereference: fault, load, repair the pointer.
			s.stats.Faults++
			s.chargeMicros(s.cfg.TrapMicros)
			s.loadPage(target.Page)
			if !s.swizzled[site] { // eager load may have repaired it
				s.swizzled[site] = true
				s.stats.Swizzles++
				s.chargeMicros(s.cfg.SwizzleMicros)
			}
		}
		// Swizzled: a direct dereference, no overhead.
	}
	return target, nil
}

// Object returns the object's data (the page must be resident).
func (s *Session) Object(obj OID) uint32 {
	return s.disk.Pages[obj.Page][obj.Idx].Data
}

// --- Figure 3: checks vs exceptions, u uses per pointer --------------

// Fig3Workload dereferences nPtrs distinct pointers u times each and
// returns the total cost in µs plus a traversal checksum.
func Fig3Workload(d *Disk, cfg Config, nPtrs, uses int) (micros float64, checksum uint32, err error) {
	s := Open(d, cfg)
	s.loadPage(0)
	objs := len(d.Pages[0])
	slots := len(d.Pages[0][0].Ptrs)
	for p := 0; p < nPtrs; p++ {
		obj := OID{Page: 0, Idx: int32(p % objs)}
		slot := (p / objs) % slots
		for u := 0; u < uses; u++ {
			target, err := s.Deref(obj, slot)
			if err != nil {
				return 0, 0, err
			}
			checksum = checksum*31 + s.Object(obj) + uint32(target.Idx)
		}
	}
	return s.clock.MicrosTotal(), checksum, nil
}

// Fig3Crossover sweeps u to find the smallest number of uses at which
// fault-based detection beats checking, for the given check cost and
// trap cost. Returns 0 if no crossover within maxUses.
func Fig3Crossover(checkCycles, trapMicros float64, maxUses int) (int, error) {
	d := NewGraphDisk(6, 32, 4, 7)
	const nPtrs = 100
	for u := 1; u <= maxUses; u++ {
		chk, cs1, err := Fig3Workload(d, Config{
			Detect: DetectChecks, Policy: Lazy,
			CheckCycles: checkCycles, SwizzleMicros: 0.5, TrapMicros: trapMicros,
		}, nPtrs, u)
		if err != nil {
			return 0, err
		}
		flt, cs2, err := Fig3Workload(d, Config{
			Detect: DetectFaults, Policy: Lazy,
			CheckCycles: checkCycles, SwizzleMicros: 0.5, TrapMicros: trapMicros,
		}, nPtrs, u)
		if err != nil {
			return 0, err
		}
		if cs1 != cs2 {
			return 0, fmt.Errorf("%w: checks %#x vs faults %#x at %d uses", ErrDiverged, cs1, cs2, u)
		}
		if flt < chk {
			return u, nil
		}
	}
	return 0, nil
}

// --- Figure 4: eager vs lazy swizzling -------------------------------

// Fig4Workload loads pages and uses a fraction of each page's pointers,
// returning total µs and a checksum. ptrsPerPage is fixed by the disk
// layout; usedPerPage selects how many distinct pointers per page are
// dereferenced (each once — Figure 4's model counts first uses).
func Fig4Workload(d *Disk, cfg Config, pages int, usedPerPage int) (micros float64, checksum uint32, err error) {
	s := Open(d, cfg)
	objs := len(d.Pages[0])
	slots := len(d.Pages[0][0].Ptrs)
	total := objs * slots
	if usedPerPage > total {
		usedPerPage = total
	}
	for p := 0; p < pages; p++ {
		s.loadPage(int32(p))
		for k := 0; k < usedPerPage; k++ {
			obj := OID{Page: int32(p), Idx: int32(k % objs)}
			slot := (k / objs) % slots
			target, err := s.Deref(obj, slot)
			if err != nil {
				return 0, 0, err
			}
			checksum = checksum*33 + uint32(target.Page) + s.Object(obj)
		}
	}
	return s.clock.MicrosTotal(), checksum, nil
}

// Fig4Crossover sweeps the per-page used-pointer count to find the
// smallest count at which eager swizzling beats lazy, for the given
// trap and swizzle costs. Returns 0 if eager never wins up to the page
// pointer count.
func Fig4Crossover(trapMicros, swizzleMicros float64, ptrsPerPage int) (int, error) {
	// One object per "pointer slot": pages of ptrsPerPage pointers.
	d := NewGraphDisk(8, ptrsPerPage, 1, 11)
	for used := 1; used <= ptrsPerPage; used++ {
		lazyC, cs1, err := Fig4Workload(d, Config{
			Detect: DetectFaults, Policy: Lazy,
			TrapMicros: trapMicros, SwizzleMicros: swizzleMicros,
		}, len(d.Pages), used)
		if err != nil {
			return 0, err
		}
		eagerC, cs2, err := Fig4Workload(d, Config{
			Detect: DetectFaults, Policy: Eager,
			TrapMicros: trapMicros, SwizzleMicros: swizzleMicros,
		}, len(d.Pages), used)
		if err != nil {
			return 0, err
		}
		if cs1 != cs2 {
			return 0, fmt.Errorf("%w: lazy %#x vs eager %#x at %d used", ErrDiverged, cs1, cs2, used)
		}
		if eagerC < lazyC {
			return used, nil
		}
	}
	return 0, nil
}
