package swizzle

import (
	"math"
	"testing"

	"uexc/internal/analytic"
)

func TestGraphDiskShape(t *testing.T) {
	d := NewGraphDisk(4, 16, 3, 1)
	if len(d.Pages) != 4 {
		t.Fatalf("pages = %d", len(d.Pages))
	}
	for p, objs := range d.Pages {
		if len(objs) != 16 {
			t.Fatalf("page %d has %d objects", p, len(objs))
		}
		for _, o := range objs {
			if len(o.Ptrs) != 3 {
				t.Fatalf("object has %d ptrs", len(o.Ptrs))
			}
			for _, q := range o.Ptrs {
				if q.Page < 0 || q.Page >= 4 || q.Idx < 0 || q.Idx >= 16 {
					t.Fatalf("dangling OID %+v", q)
				}
			}
		}
	}
}

func TestDerefRequiresResidentPage(t *testing.T) {
	d := NewGraphDisk(2, 4, 1, 2)
	s := Open(d, Config{Detect: DetectChecks})
	if _, err := s.Deref(OID{Page: 1, Idx: 0}, 0); err == nil {
		t.Error("deref in non-resident page succeeded")
	}
}

func TestChecksChargePerDeref(t *testing.T) {
	d := NewGraphDisk(3, 8, 2, 3)
	s := Open(d, Config{Detect: DetectChecks, CheckCycles: 5, SwizzleMicros: 0})
	s.loadPage(0)
	for u := 0; u < 10; u++ {
		if _, err := s.Deref(OID{}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Checks != 10 {
		t.Errorf("checks = %d, want 10", s.Stats().Checks)
	}
	if got := s.Clock().Cycles; got != 50 {
		t.Errorf("cycles = %v, want 50 (10 checks x 5)", got)
	}
	if s.Stats().Faults != 0 {
		t.Error("checks mode took faults")
	}
}

func TestFaultsChargeOncePerPointer(t *testing.T) {
	d := NewGraphDisk(3, 8, 2, 3)
	s := Open(d, Config{Detect: DetectFaults, TrapMicros: 6, SwizzleMicros: 0})
	s.loadPage(0)
	for u := 0; u < 10; u++ {
		if _, err := s.Deref(OID{}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Faults != 1 {
		t.Errorf("faults = %d, want 1 (first use only)", s.Stats().Faults)
	}
	if got := s.Clock().MicrosTotal(); math.Abs(got-6) > 1e-9 {
		t.Errorf("cost = %vµs, want 6", got)
	}
}

func TestMechanismsProduceIdenticalTraversals(t *testing.T) {
	d := NewGraphDisk(6, 32, 4, 7)
	_, cs1, err1 := Fig3Workload(d, Config{Detect: DetectChecks, CheckCycles: 5, SwizzleMicros: 1, TrapMicros: 6}, 80, 3)
	_, cs2, err2 := Fig3Workload(d, Config{Detect: DetectFaults, CheckCycles: 5, SwizzleMicros: 1, TrapMicros: 6}, 80, 3)
	if err1 != nil || err2 != nil {
		t.Fatalf("workloads: %v, %v", err1, err2)
	}
	if cs1 != cs2 {
		t.Errorf("checksums differ: %#x vs %#x", cs1, cs2)
	}
}

// TestFig3CrossoverMatchesAnalyticModel: the empirical crossover from
// running the store must land on the analytic curve u = f·t/c.
func TestFig3CrossoverMatchesAnalyticModel(t *testing.T) {
	cases := []struct {
		check float64
		trap  float64
	}{
		{5, 6}, {10, 6}, {15, 6}, {5, 80}, {20, 80},
	}
	for _, c := range cases {
		want := analytic.SwizzleBreakEvenUses(c.check, c.trap, 25)
		got, err := Fig3Crossover(c.check, c.trap, 600)
		if err != nil {
			t.Fatal(err)
		}
		if got == 0 {
			t.Errorf("c=%v t=%v: no crossover found (analytic %v)", c.check, c.trap, want)
			continue
		}
		// Empirical crossover = ceil of analytic (first integer u where
		// faults strictly win); allow one step of slack for the
		// swizzle-cost term present in both configurations.
		if math.Abs(float64(got)-want) > want*0.25+2 {
			t.Errorf("c=%v t=%v: empirical crossover %d vs analytic %.1f", c.check, c.trap, got, want)
		} else {
			t.Logf("c=%v cycles, t=%vµs: crossover at u=%d (analytic %.1f)", c.check, c.trap, got, want)
		}
	}
}

// TestFig3FastShiftsBalance is Figure 3's headline: the fast mechanism
// moves the break-even point to far fewer uses per pointer.
func TestFig3FastShiftsBalance(t *testing.T) {
	fast, err := Fig3Crossover(5, 6, 800)
	if err != nil {
		t.Fatal(err)
	}
	ultrix, err := Fig3Crossover(5, 80, 800)
	if err != nil {
		t.Fatal(err)
	}
	if fast == 0 || ultrix == 0 {
		t.Fatalf("crossovers: fast=%d ultrix=%d", fast, ultrix)
	}
	t.Logf("break-even uses/pointer: fast=%d ultrix=%d", fast, ultrix)
	if ultrix < 8*fast {
		t.Errorf("ultrix crossover %d not ~13x fast %d", ultrix, fast)
	}
}

// TestFig4CrossoverMatchesAnalyticModel: the empirical eager/lazy
// crossover must match pu* = (t + pn·s)/(t + s).
func TestFig4CrossoverMatchesAnalyticModel(t *testing.T) {
	const pn = 50
	cases := []struct {
		trap float64
		s    float64
	}{
		{6, 2}, {80, 2}, {6, 0.5}, {80, 8},
	}
	for _, c := range cases {
		wantFrac := analytic.BreakEvenUsedFraction(c.trap, c.s, pn)
		want := wantFrac * pn
		got, err := Fig4Crossover(c.trap, c.s, pn)
		if err != nil {
			t.Fatal(err)
		}
		if want >= pn {
			if got != 0 {
				t.Errorf("t=%v s=%v: eager won at %d but analytic says never (pu*=%.1f)", c.trap, c.s, got, want)
			}
			continue
		}
		if got == 0 {
			t.Errorf("t=%v s=%v: no crossover (analytic %.1f)", c.trap, c.s, want)
			continue
		}
		if math.Abs(float64(got)-want) > 2.5 {
			t.Errorf("t=%v s=%v: empirical %d vs analytic %.1f", c.trap, c.s, got, want)
		} else {
			t.Logf("t=%vµs s=%vµs: eager wins from %d used pointers (analytic %.1f)", c.trap, c.s, got, want)
		}
	}
}

// TestFig4FastFavorsLazy is Figure 4's headline: cheap faults make lazy
// swizzling attractive over a broader range (the break-even moves to a
// higher used fraction).
func TestFig4FastFavorsLazy(t *testing.T) {
	const pn = 50
	fast, err := Fig4Crossover(6, 2, pn)
	if err != nil {
		t.Fatal(err)
	}
	ultrix, err := Fig4Crossover(80, 2, pn)
	if err != nil {
		t.Fatal(err)
	}
	if fast == 0 || ultrix == 0 {
		t.Fatalf("crossovers: fast=%d ultrix=%d", fast, ultrix)
	}
	t.Logf("eager wins from: fast=%d ultrix=%d used pointers (of %d)", fast, ultrix, pn)
	if fast <= ultrix {
		t.Errorf("fast crossover %d should exceed ultrix %d (lazy favored)", fast, ultrix)
	}
}
