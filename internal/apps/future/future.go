// Package future implements §4.2.1's futures: "an unresolved future is
// represented as an unaligned pointer. When the value of the future is
// available, the pointer is updated and aligned" — the APRIL/Alewife
// technique, here on a conventional (simulated) processor with fast
// user-level exception delivery.
//
// A future cell holds either an aligned pointer to its resolved value
// or an unaligned (odd) token identifying the deferred computation.
// Touching an unresolved future faults; the user-level handler runs the
// deferred computation (here: iterative Fibonacci of the token's
// argument), stores the value, aligns the pointer, and resumes — the
// consumer never distinguishes resolved from unresolved futures, and a
// future resolves exactly once no matter how often it is touched.
package future

import (
	"fmt"

	"uexc/internal/core"
)

// Result reports one run.
type Result struct {
	Sum      uint32 // sum over all touches of all futures
	Faults   uint64 // resolution faults (one per future, not per touch)
	Resolved uint32 // futures resolved
	Cycles   uint64
}

// program creates n futures (future i computes fib(i+1)), touches each
// of them touches times, and sums the values. Cursor convention: t4
// holds the pointer being dereferenced so the handler can repair it.
func program(n, touches int) string {
	return fmt.Sprintf(`
	.equ NFUT, %d
	.equ TOUCHES, %d
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, resolver
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<4)|(1<<5)
	jal   __uexc_enable
	nop

	# Create futures: cell i holds (value_slot_addr | 1) with the
	# argument stored in the value slot (the deferred computation's
	# operand lives where its result will go).
	la    t0, cells
	la    t1, slots
	li    t2, 0                # i
mkfut:
	ori   t3, t1, 1            # unresolved token: odd slot address
	sw    t3, 0(t0)
	addiu t4, t2, 1
	sw    t4, 0(t1)            # argument: fib(i+1)
	addiu t0, t0, 4
	addiu t1, t1, 4
	addiu t2, t2, 1
	li    t5, NFUT
	bne   t2, t5, mkfut
	nop

	li    s0, TOUCHES
	li    s2, 0                # sum
touchround:
	la    s3, cells
	li    s4, 0
touchloop:
	lw    t4, 0(s3)            # the future (maybe odd)
	nop
	lw    t5, 0(t4)            # touch: faults if unresolved
	nop
	addu  s2, s2, t5
	addiu s3, s3, 4
	addiu s4, s4, 1
	li    t6, NFUT
	bne   s4, t6, touchloop
	nop
	addiu s0, s0, -1
	bnez  s0, touchround
	nop

	la    t0, sum_out
	sw    s2, 0(t0)
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

# The resolver: badva is the odd slot address; the slot holds the
# argument k. Compute fib(k) iteratively, store it in the slot, align
# the future cell's pointer, repair the cursor, resume.
resolver:
	lw    t6, 8(a0)            # FrBadVAddr
	nop
	addiu t6, t6, -1           # slot address
	lw    t7, 0(t6)            # argument k
	nop
	li    t8, 0                # fib(0)
	li    t9, 1                # fib(1)
fibloop:
	addu  t5, t8, t9
	move  t8, t9
	move  t9, t5
	addiu t7, t7, -1
	bnez  t7, fibloop
	nop
	sw    t8, 0(t6)            # resolve: value into the slot
	# Align the cell: find it by scanning (cells are few); a real
	# system would keep a back pointer — the slot's index gives it.
	la    t7, slots
	subu  t7, t6, t7           # byte offset = index*4
	la    t5, cells
	addu  t5, t5, t7
	sw    t6, 0(t5)            # cell now holds the aligned slot address
	sw    t6, 0x3c(a0)         # repair cursor (frame t4)
	la    t7, resolved_count
	lw    t5, 0(t7)
	nop
	addiu t5, t5, 1
	sw    t5, 0(t7)
	jr    ra
	nop

	.align 8
cells:
	.space NFUT * 4
slots:
	.space NFUT * 4
resolved_count:
	.word 0
sum_out:
	.word 0
`, n, touches)
}

// Run creates n futures and touches each one touches times.
func Run(n, touches int) (Result, error) {
	if n < 1 || n > 40 || touches < 1 || touches > 1000 {
		return Result{}, fmt.Errorf("future: parameters out of range")
	}
	m, err := core.NewMachine()
	if err != nil {
		return Result{}, err
	}
	if err := m.LoadProgram(program(n, touches)); err != nil {
		return Result{}, err
	}
	if err := m.Run(100_000_000); err != nil {
		return Result{}, err
	}
	r := Result{Cycles: m.CPU().Cycles, Faults: m.CPU().ExcCounts[4]}
	var ok bool
	if r.Sum, ok = m.K.ReadUserWord(m.Sym("sum_out")); !ok {
		return r, fmt.Errorf("future: sum unreadable")
	}
	if r.Resolved, ok = m.K.ReadUserWord(m.Sym("resolved_count")); !ok {
		return r, fmt.Errorf("future: resolved count unreadable")
	}
	return r, nil
}

// Expected computes the expected sum: touches * sum(fib(1..n)) with
// fib(1)=1, fib(2)=1.
func Expected(n, touches int) uint32 {
	a, b := uint32(0), uint32(1)
	var sum uint32
	for i := 1; i <= n; i++ {
		a, b = b, a+b
		sum += a
	}
	return sum * uint32(touches)
}
