package future

import "testing"

func TestFuturesResolveOnFirstTouch(t *testing.T) {
	const n, touches = 10, 5
	r, err := Run(n, touches)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sum != Expected(n, touches) {
		t.Errorf("sum = %d, want %d", r.Sum, Expected(n, touches))
	}
	// Exactly one fault per future, regardless of touch count: the
	// defining property vs software checks (§4.2.2's tradeoff).
	if r.Faults != n {
		t.Errorf("faults = %d, want %d (resolve once)", r.Faults, n)
	}
	if r.Resolved != n {
		t.Errorf("resolved = %d, want %d", r.Resolved, n)
	}
}

func TestSingleFutureManyTouches(t *testing.T) {
	r, err := Run(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults != 1 {
		t.Errorf("faults = %d, want 1", r.Faults)
	}
	if r.Sum != 100 { // fib(1) = 1, touched 100 times
		t.Errorf("sum = %d, want 100", r.Sum)
	}
}

func TestExpected(t *testing.T) {
	// fib 1..5 = 1,1,2,3,5; sum 12.
	if got := Expected(5, 1); got != 12 {
		t.Errorf("Expected(5,1) = %d", got)
	}
	if got := Expected(5, 3); got != 36 {
		t.Errorf("Expected(5,3) = %d", got)
	}
}

func TestBounds(t *testing.T) {
	if _, err := Run(0, 1); err == nil {
		t.Error("Run(0,1) succeeded")
	}
	if _, err := Run(1, 0); err == nil {
		t.Error("Run(1,0) succeeded")
	}
}
