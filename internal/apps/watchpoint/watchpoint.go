// Package watchpoint implements conditional data watchpoints — one of
// the exception uses motivating the paper (its introduction cites
// Wahbe's VM-based watchpoint work) — live on the simulated machine.
//
// The watched variable is placed in its own 1 KB logical subpage
// (§3.2.4); the kernel's watch mode emulates each store to the watched
// subpage with protection left intact, records the overwritten and
// stored values in the exception frame, advances the saved PC past the
// store, and delivers a notification to the user-level handler. The
// handler applies an arbitrary condition (here: "new value crosses a
// threshold") at user level, in a few microseconds per hit — the
// workload's other stores run at full speed, and stores to *other*
// subpages of the same hardware page are transparently emulated.
package watchpoint

import (
	"fmt"

	"uexc/internal/core"
)

// Result reports a run.
type Result struct {
	Hits        uint32 // stores observed on the watched variable
	CondMatches uint32 // hits whose new value satisfied the condition
	LastOld     uint32
	LastNew     uint32
	Final       uint32 // final value of the watched variable
	Cycles      uint64
}

// program: watch one word; the workload stores i*3 into it n times
// (plus decoy stores to a neighboring subpage and an unrelated page).
// The condition counts new values above threshold.
func program(n int, threshold uint32) string {
	return fmt.Sprintf(`
	.equ N, %d
	.equ THRESH, %d
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, watch_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<1)|(1<<2)|(1<<3)
	jal   __uexc_enable
	nop
	li    a0, 1                # enable watch mode
	li    v0, SYS_uexc_watch
	syscall
	nop
	li    a0, 8192
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0               # watched variable lives at s1
	sw    zero, 0(s1)
	la    t0, watched_at
	sw    s1, 0(t0)
	move  a0, s1               # arm: protect the watched subpage
	li    a1, 1024
	li    a2, 0
	li    v0, SYS_subpage
	syscall
	nop

	li    s0, N
	li    s2, 0
loop:
	# workload: a store to the watched variable...
	addiu s2, s2, 3
	sw    s2, 0(s1)            # watched: emulated + notified
	# ...plus decoys that must not notify:
	sw    s2, 2048(s1)         # same hardware page, unwatched subpage
	la    t0, scratch
	sw    s2, 0(t0)            # unrelated page
	addiu s0, s0, -1
	bnez  s0, loop
	nop

	lw    t0, 0(s1)            # read back the watched variable
	la    t1, final_val
	sw    t0, 0(t1)
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

# The watchpoint handler: a0 = frame. Old value at 0x48, new at 0x4c,
# watched address in FrBadVAddr (0x08). The kernel already advanced the
# frame PC past the store; just observe and return.
watch_handler:
	la    t6, hit_count
	lw    t7, 0(t6)
	nop
	addiu t7, t7, 1
	sw    t7, 0(t6)
	lw    t7, 0x48(a0)         # old value
	la    t6, last_old
	sw    t7, 0(t6)
	lw    t7, 0x4c(a0)         # new value
	la    t6, last_new
	sw    t7, 0(t6)
	# conditional part: count new values above THRESH
	li    t6, THRESH
	sltu  t6, t6, t7
	beqz  t6, done
	nop
	la    t6, cond_count
	lw    t7, 0(t6)
	nop
	addiu t7, t7, 1
	sw    t7, 0(t6)
done:
	jr    ra
	nop

	.align 4
watched_at:
	.word 0
hit_count:
	.word 0
cond_count:
	.word 0
last_old:
	.word 0
last_new:
	.word 0
final_val:
	.word 0
scratch:
	.word 0
`, n, threshold)
}

// Run executes n watched stores (values 3, 6, ..., 3n) with the given
// condition threshold.
func Run(n int, threshold uint32) (Result, error) {
	if n < 1 || n > 50_000 {
		return Result{}, fmt.Errorf("watchpoint: n %d out of range", n)
	}
	m, err := core.NewMachine()
	if err != nil {
		return Result{}, err
	}
	if err := m.LoadProgram(program(n, threshold)); err != nil {
		return Result{}, err
	}
	if err := m.Run(500_000_000); err != nil {
		return Result{}, err
	}
	read := func(sym string) uint32 {
		v, _ := m.K.ReadUserWord(m.Sym(sym))
		return v
	}
	return Result{
		Hits:        read("hit_count"),
		CondMatches: read("cond_count"),
		LastOld:     read("last_old"),
		LastNew:     read("last_new"),
		Final:       read("final_val"),
		Cycles:      m.CPU().Cycles,
	}, nil
}
