package watchpoint

import "testing"

func TestWatchpointObservesEveryStore(t *testing.T) {
	const n = 20
	r, err := Run(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hits != n {
		t.Errorf("hits = %d, want %d (every watched store notified)", r.Hits, n)
	}
	if r.Final != 3*n {
		t.Errorf("final = %d, want %d (emulated stores landed)", r.Final, 3*n)
	}
	if r.LastOld != 3*(n-1) || r.LastNew != 3*n {
		t.Errorf("last transition = %d -> %d, want %d -> %d",
			r.LastOld, r.LastNew, 3*(n-1), 3*n)
	}
	// Threshold 0: every stored value (3, 6, ...) is above it.
	if r.CondMatches != n {
		t.Errorf("cond matches = %d, want %d", r.CondMatches, n)
	}
}

func TestConditionalCounting(t *testing.T) {
	// Values 3..30; condition new > 15 matches 18, 21, 24, 27, 30.
	r, err := Run(10, 15)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hits != 10 {
		t.Errorf("hits = %d, want 10", r.Hits)
	}
	if r.CondMatches != 5 {
		t.Errorf("cond matches = %d, want 5", r.CondMatches)
	}
}

func TestWatchpointStaysArmed(t *testing.T) {
	// The defining property vs plain subpage delivery: no re-arming
	// syscalls anywhere, yet every store is seen.
	r, err := Run(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hits != 100 {
		t.Errorf("hits = %d, want 100 (watchpoint must stay armed)", r.Hits)
	}
}

func TestBounds(t *testing.T) {
	if _, err := Run(0, 0); err == nil {
		t.Error("Run(0) succeeded")
	}
}
