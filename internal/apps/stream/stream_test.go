package stream

import "testing"

func TestLazyStreamMaterializesOnDemand(t *testing.T) {
	const n = 30
	r, err := Run(n)
	if err != nil {
		t.Fatal(err)
	}
	want := FibSum(n)
	if r.Sum != want {
		t.Errorf("sum = %d, want %d", r.Sum, want)
	}
	if r.SecondSum != want {
		t.Errorf("second traversal sum = %d, want %d", r.SecondSum, want)
	}
	// One materialization fault per element beyond the statically
	// evaluated head; the second traversal takes none.
	if r.Faults != n-1 {
		t.Errorf("faults = %d, want %d (head pre-evaluated, no re-faults)", r.Faults, n-1)
	}
}

func TestStreamSingleElement(t *testing.T) {
	r, err := Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sum != 1 || r.Faults != 0 {
		t.Errorf("sum=%d faults=%d, want 1/0", r.Sum, r.Faults)
	}
}

func TestStreamLong(t *testing.T) {
	const n = 500
	r, err := Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sum != FibSum(n) {
		t.Errorf("sum = %d, want %d (wraparound arithmetic)", r.Sum, FibSum(n))
	}
	if r.Faults != n-1 {
		t.Errorf("faults = %d, want %d", r.Faults, n-1)
	}
}

func TestRunBounds(t *testing.T) {
	if _, err := Run(0); err == nil {
		t.Error("Run(0) succeeded")
	}
	if _, err := Run(10_000); err == nil {
		t.Error("Run(10000) succeeded (arena overflow)")
	}
}

func TestFibSum(t *testing.T) {
	// 1+1+2+3+5 = 12
	if got := FibSum(5); got != 12 {
		t.Errorf("FibSum(5) = %d, want 12", got)
	}
}
