// Package stream implements the paper's §4.2.1 unbounded-data-structure
// application on the real simulated machine: a lazily materialized,
// conceptually infinite linked list whose unevaluated tail is denoted by
// an unaligned (odd) pointer. A traversal that walks off the evaluated
// prefix takes an unaligned-access fault; the fast user-level handler
// materializes the next cell (here: the next Fibonacci number), repairs
// the pointer, and resumes the traversal — no explicit "force the next
// element" calls anywhere in the consumer.
//
// Everything runs as simulated user-mode assembly with the fast
// exception path: the handler is ordinary user code reached in ~5 µs.
package stream

import (
	"fmt"

	"uexc/internal/core"
)

// Result reports one run.
type Result struct {
	Sum       uint32 // sum of the first N stream elements
	Faults    uint64 // unaligned faults taken (cells materialized)
	SecondSum uint32 // sum from a second traversal (must equal Sum, no faults)
	Cycles    uint64
}

// program builds the user program: sum the first n elements of the lazy
// Fibonacci stream, twice.
//
// Convention: the traversal cursor lives in t4 (saved in the exception
// frame at offset 0x3c), so the handler can repair it.
func program(n int) string {
	return fmt.Sprintf(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, stream_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<4)|(1<<5)      # AdEL|AdES
	jal   __uexc_enable
	nop

	li    s0, %d                 # element count
	jal   sum_stream
	nop
	la    t6, result1
	sw    s2, 0(t6)

	li    s0, %d
	jal   sum_stream             # traverse again: all cells exist now
	nop
	la    t6, result2
	sw    s2, 0(t6)

	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

# sum_stream: s0 = count in; s2 = sum out. Cursor in t4.
sum_stream:
	la    t4, stream_arena
	li    s2, 0
sumloop:
	lw    t5, 0(t4)              # datum: faults on unevaluated tail
	nop
	addu  s2, s2, t5
	lw    t4, 4(t4)              # next pointer (possibly odd)
	addiu s0, s0, -1
	bnez  s0, sumloop
	nop
	jr    ra
	nop

# The C-level fast handler: materialize the cell at (badvaddr & ~1) with
# the next Fibonacci number, chain a new unevaluated tail, repair the
# previous cell's next field and the saved cursor, and resume (the
# faulting load retries against the now-real cell).
stream_handler:
	lw    t6, 8(a0)              # FrBadVAddr: the odd pointer
	nop
	addiu t6, t6, -1             # real cell address
	la    t7, fib_state
	lw    t8, 0(t7)              # a: this cell's datum
	lw    t9, 4(t7)              # b
	sw    t8, 0(t6)              # cell.datum = a
	addu  t8, t8, t9             # a+b
	sw    t9, 0(t7)              # a' = b
	sw    t8, 4(t7)              # b' = a+b
	addiu t9, t6, 8
	ori   t9, t9, 1
	sw    t9, 4(t6)              # cell.next = (cell+8) | 1  (lazy tail)
	sw    t6, -4(t6)             # previous cell's next: now evaluated
	sw    t6, 0x3c(a0)           # repair the saved cursor (frame t4)
	jr    ra
	nop

	.align 8
stream_arena:
	.word 1                      # head: fib(1)
	.word stream_arena + 8 + 1   # unevaluated tail marker
	.space 8192                  # room for materialized cells
fib_state:
	.word 1, 2                   # next datum, its successor
result1:
	.word 0
result2:
	.word 0
`, n, n)
}

// Run sums the first n Fibonacci numbers via the lazy stream.
func Run(n int) (Result, error) {
	if n < 1 || n > 900 {
		return Result{}, fmt.Errorf("stream: n %d out of range [1, 900]", n)
	}
	m, err := core.NewMachine()
	if err != nil {
		return Result{}, err
	}
	if err := m.LoadProgram(program(n)); err != nil {
		return Result{}, err
	}
	if err := m.Run(50_000_000); err != nil {
		return Result{}, err
	}
	r := Result{Cycles: m.CPU().Cycles}
	r.Faults = m.CPU().ExcCounts[4] // AdEL
	var ok bool
	if r.Sum, ok = m.K.ReadUserWord(m.Sym("result1")); !ok {
		return r, fmt.Errorf("stream: result1 unreadable")
	}
	if r.SecondSum, ok = m.K.ReadUserWord(m.Sym("result2")); !ok {
		return r, fmt.Errorf("stream: result2 unreadable")
	}
	return r, nil
}

// FibSum computes the expected sum of the first n Fibonacci numbers
// (1, 1, 2, 3, ...) with uint32 wraparound, for verification.
func FibSum(n int) uint32 {
	a, b := uint32(1), uint32(1)
	var sum uint32
	for i := 0; i < n; i++ {
		sum += a
		a, b = b, a+b
	}
	return sum
}
