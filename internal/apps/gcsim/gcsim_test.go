package gcsim

import (
	"testing"

	"uexc/internal/core"
	"uexc/internal/simos"
)

func costs(t *testing.T, mode core.Mode) simos.CostTable {
	t.Helper()
	ct, err := simos.Measure(mode)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func TestBarriersProduceIdenticalHeaps(t *testing.T) {
	// The barrier mechanism changes cost, never collector results.
	ult := costs(t, core.ModeUltrix)
	fast := costs(t, core.ModeFast)
	for _, wl := range []struct {
		name string
		run  func(Barrier, simos.CostTable) Result
	}{
		{"lisp", LispOps}, {"array", ArrayTest},
		{"tree", TreeWorkload}, {"interactive", InteractiveWorkload},
	} {
		a := wl.run(BarrierSigsegv, ult)
		b := wl.run(BarrierFastEager, fast)
		c := wl.run(BarrierSoftware, fast)
		if a.Checksum != b.Checksum || b.Checksum != c.Checksum {
			t.Errorf("%s: checksums differ: sigsegv %#x fast %#x software %#x",
				wl.name, a.Checksum, b.Checksum, c.Checksum)
		}
		if a.Stats.Collections != b.Stats.Collections || b.Stats.Collections != c.Stats.Collections {
			t.Errorf("%s: collection counts differ: %d/%d/%d", wl.name,
				a.Stats.Collections, b.Stats.Collections, c.Stats.Collections)
		}
		if a.Stats.Faults != b.Stats.Faults {
			t.Errorf("%s: fault counts differ between page barriers: %d vs %d",
				wl.name, a.Stats.Faults, b.Stats.Faults)
		}
		if c.Stats.Faults != 0 || c.Stats.Checks == 0 {
			t.Errorf("%s: software barrier faults=%d checks=%d", wl.name,
				c.Stats.Faults, c.Stats.Checks)
		}
	}
}

func TestLispOpsShape(t *testing.T) {
	// Paper §4.1: the Lisp-operations benchmark runs the collector
	// about 80 times and takes over 2000 protection faults; Ultrix CPU
	// time ~24 s, fast version faster.
	ult := LispOps(BarrierSigsegv, costs(t, core.ModeUltrix))
	fast := LispOps(BarrierFastEager, costs(t, core.ModeFast))

	if c := ult.Stats.Collections; c < 40 || c > 200 {
		t.Errorf("collections = %d, want ~80", c)
	}
	if f := ult.Stats.Faults; f < 2000 || f > 8000 {
		t.Errorf("faults = %d, want 2000-8000", f)
	}
	if ult.Seconds < 15 || ult.Seconds > 35 {
		t.Errorf("ultrix time = %.1fs, want ~24s", ult.Seconds)
	}
	if fast.Seconds >= ult.Seconds {
		t.Errorf("fast (%.2fs) not faster than ultrix (%.2fs)", fast.Seconds, ult.Seconds)
	}
	imp := 100 * (ult.Seconds - fast.Seconds) / ult.Seconds
	t.Logf("lisp: ultrix %.2fs fast %.2fs improvement %.1f%% (paper: 24 vs 23, 4%%); faults=%d collections=%d",
		ult.Seconds, fast.Seconds, imp, ult.Stats.Faults, ult.Stats.Collections)
	if imp <= 0 || imp > 15 {
		t.Errorf("improvement = %.1f%%, want (0, 15]", imp)
	}
}

func TestArrayTestShape(t *testing.T) {
	// Paper §4.1: 1 MB array with random replacement; ~2000 faults,
	// Ultrix ~2 s, fast ~1.8 s (10% improvement).
	ult := ArrayTest(BarrierSigsegv, costs(t, core.ModeUltrix))
	fast := ArrayTest(BarrierFastEager, costs(t, core.ModeFast))

	if f := ult.Stats.Faults; f < 1000 || f > 6000 {
		t.Errorf("faults = %d, want ~2000", f)
	}
	if ult.Seconds < 1.0 || ult.Seconds > 4.0 {
		t.Errorf("ultrix time = %.2fs, want ~2s", ult.Seconds)
	}
	imp := 100 * (ult.Seconds - fast.Seconds) / ult.Seconds
	t.Logf("array: ultrix %.2fs fast %.2fs improvement %.1f%% (paper: 2 vs 1.8, 10%%); faults=%d",
		ult.Seconds, fast.Seconds, imp, ult.Stats.Faults)
	if imp < 3 || imp > 20 {
		t.Errorf("improvement = %.1f%%, want [3, 20] (paper: 10%%)", imp)
	}
}

func TestArrayBenefitsMoreThanLisp(t *testing.T) {
	// Table 4's conclusion: performance impact is highly application-
	// dependent; the array test's fault density makes it benefit more.
	ultL := LispOps(BarrierSigsegv, costs(t, core.ModeUltrix))
	fastL := LispOps(BarrierFastEager, costs(t, core.ModeFast))
	ultA := ArrayTest(BarrierSigsegv, costs(t, core.ModeUltrix))
	fastA := ArrayTest(BarrierFastEager, costs(t, core.ModeFast))
	impL := (ultL.Seconds - fastL.Seconds) / ultL.Seconds
	impA := (ultA.Seconds - fastA.Seconds) / ultA.Seconds
	if impA <= impL {
		t.Errorf("array improvement %.2f%% not above lisp %.2f%%", 100*impA, 100*impL)
	}
}

func TestCheckAndTrapCounts(t *testing.T) {
	// Table 5 inputs: c (checks) from the software run, t (traps) from
	// the page-protection run, for each application.
	fast := costs(t, core.ModeFast)
	for _, wl := range []struct {
		name string
		run  func(Barrier, simos.CostTable) Result
	}{{"tree", TreeWorkload}, {"interactive", InteractiveWorkload}} {
		sw := wl.run(BarrierSoftware, fast)
		pp := wl.run(BarrierFastEager, fast)
		if sw.Stats.Checks == 0 || pp.Stats.Faults == 0 {
			t.Fatalf("%s: c=%d t=%d", wl.name, sw.Stats.Checks, pp.Stats.Faults)
		}
		ratio := float64(sw.Stats.Checks) / float64(pp.Stats.Faults)
		t.Logf("%s: c=%d t=%d c/t=%.0f", wl.name, sw.Stats.Checks, pp.Stats.Faults, ratio)
		if ratio < 10 {
			t.Errorf("%s: c/t = %.1f, implausibly low", wl.name, ratio)
		}
	}
}

func TestCollectReclaimsGarbage(t *testing.T) {
	h := New(BarrierSoftware, simos.CostTable{}, 100)
	root := h.Alloc(1, nil, nil)
	h.AddRoot(root)
	for i := 0; i < 99; i++ {
		h.Alloc(uint32(i), nil, nil) // garbage
	}
	h.Collect()
	s := h.Stats()
	if s.Promoted != 1 {
		t.Errorf("promoted = %d, want 1 (the root)", s.Promoted)
	}
	if s.Reclaimed != 99 {
		t.Errorf("reclaimed = %d, want 99", s.Reclaimed)
	}
}

func TestPromotionKeepsReachableStructure(t *testing.T) {
	h := New(BarrierSoftware, simos.CostTable{}, 1000)
	// Build a small tree, keep it, collect, verify the structure.
	leaf1 := h.Alloc(10, nil, nil)
	leaf2 := h.Alloc(20, nil, nil)
	node := h.Alloc(30, leaf1, leaf2)
	h.AddRoot(node)
	before := h.Checksum()
	h.Collect()
	if got := h.Checksum(); got != before {
		t.Errorf("checksum changed across collection: %#x -> %#x", before, got)
	}
	if node.gen != 1 || leaf1.gen != 1 || leaf2.gen != 1 {
		t.Error("reachable objects not promoted")
	}
}

func TestWriteBarrierFaultOncePerPagePerCycle(t *testing.T) {
	ct := simos.CostTable{ProtFaultRT: 100, MprotectPage: 50, MprotectExtraPage: 5}
	h := New(BarrierFastEager, ct, 1_000_000)
	// Build some old objects on one page.
	objs := make([]*Object, 10)
	for i := range objs {
		objs[i] = h.Alloc(uint32(i), nil, nil)
		h.AddRoot(objs[i])
	}
	h.Collect()
	// Repeated stores to the same old page: exactly one fault.
	for i := 0; i < 5; i++ {
		h.WriteRef(objs[i%len(objs)], 0, h.Alloc(99, nil, nil))
	}
	if got := h.Stats().Faults; got != 1 {
		t.Errorf("faults = %d, want 1 (page amplified after first)", got)
	}
	// After a collection the page is re-protected: next store faults.
	h.Collect()
	h.WriteRef(objs[0], 0, h.Alloc(100, nil, nil))
	if got := h.Stats().Faults; got != 2 {
		t.Errorf("faults = %d, want 2 after re-protection", got)
	}
}

func TestFullCollectionReclaimsOldGarbage(t *testing.T) {
	h := New(BarrierSoftware, simos.CostTable{}, 500)
	root := h.Alloc(1, nil, nil)
	h.AddRoot(root)
	// Promote waves of garbage into the old generation: objects kept
	// alive through a root slot only until the next wave replaces them.
	for wave := 0; wave < 5; wave++ {
		chain := h.Alloc(uint32(wave), nil, nil)
		for i := 0; i < 400; i++ {
			chain = h.Alloc(uint32(i), chain, nil)
		}
		h.WriteRef(root, 0, chain) // previous wave becomes garbage
		h.Collect()                // promotes the live wave
	}
	before := h.OldLive()
	checksum := h.Checksum()
	h.CollectFull()
	after := h.OldLive()
	if after >= before {
		t.Errorf("full collection freed nothing: %d -> %d", before, after)
	}
	if h.Stats().OldReclaimed == 0 {
		t.Error("OldReclaimed = 0")
	}
	if got := h.Checksum(); got != checksum {
		t.Errorf("full collection changed reachable data: %#x -> %#x", checksum, got)
	}
	// The compacted generation must be fully re-protected... software
	// barrier: no protection. Check dirty set cleared.
	if len(h.dirty) != 0 {
		t.Error("dirty set survived full collection")
	}
}

func TestFullCollectionReprotectsUnderPageBarrier(t *testing.T) {
	ct := simos.CostTable{ProtFaultRT: 100, MprotectPage: 50, MprotectExtraPage: 5}
	h := New(BarrierFastEager, ct, 1000)
	objs := make([]*Object, 20)
	for i := range objs {
		objs[i] = h.Alloc(uint32(i), nil, nil)
		h.AddRoot(objs[i])
	}
	h.Collect()
	// Open a page via a fault, then run a full collection: the page
	// must be protected again.
	h.WriteRef(objs[0], 0, h.Alloc(1, nil, nil))
	if h.Stats().Faults != 1 {
		t.Fatalf("faults = %d", h.Stats().Faults)
	}
	h.CollectFull()
	h.WriteRef(objs[0], 1, h.Alloc(2, nil, nil))
	if h.Stats().Faults != 2 {
		t.Errorf("faults = %d, want 2 (page re-protected by full collection)", h.Stats().Faults)
	}
}

func TestLispOpsRunsFullCollections(t *testing.T) {
	r := LispOps(BarrierSoftware, simos.CostTable{})
	if r.Stats.FullCollections < 3 {
		t.Errorf("full collections = %d, want >= 3", r.Stats.FullCollections)
	}
	if r.Stats.OldReclaimed == 0 {
		t.Error("no old-generation garbage reclaimed")
	}
}
