// Package gcsim implements the paper's §4.1 application study: a
// generational, incremental garbage collector in the style of the
// Xerox/Boehm collector, whose write barrier — the mechanism that
// detects stores creating old→young pointers — can be implemented
// three ways:
//
//   - BarrierSigsegv: write-protect old-generation pages; detect
//     barrier stores via SIGSEGV + mprotect (the Ultrix baseline);
//   - BarrierFastEager: the same page protection, but faults are
//     delivered by the paper's fast mechanism with eager amplification
//     (no unprotect syscall in the handler);
//   - BarrierSoftware: explicit inline checks before every pointer
//     store (the Hosking & Moss comparison of Table 5).
//
// The collector itself is real: it allocates objects, traces
// reachability from roots plus dirty-page remembered sets, promotes
// survivors, and reclaims garbage. The three barrier configurations
// must produce identical heap results — only the cost differs. Costs
// charge a virtual clock from the measured simos.CostTable.
package gcsim

import (
	"math/rand"

	"uexc/internal/simos"
)

// Barrier selects the write-barrier mechanism.
type Barrier int

const (
	BarrierSigsegv Barrier = iota
	BarrierFastEager
	BarrierSoftware
)

// String names the barrier for reports.
func (b Barrier) String() string {
	switch b {
	case BarrierSigsegv:
		return "Ultrix SIGSEGV + mprotect"
	case BarrierFastEager:
		return "Fast exceptions + eager amplification"
	case BarrierSoftware:
		return "Software checks"
	}
	return "unknown"
}

// Mutator/collector cost model (cycles), representing the compiled
// application and collector code the paper's benchmarks executed.
// These charges are identical across barrier configurations; only the
// barrier costs differ.
const (
	allocCycles    = 18  // cons: bump allocate + initialize
	storeCycles    = 2   // the pointer store itself
	computeCycles  = 24  // mutator work per operation (car/cdr/arith)
	traceObjCycles = 40  // per object traced during collection
	scanPageCycles = 700 // per dirty old page scanned for old→young refs
	promoteCycles  = 60  // copy an object to the old generation
	reclaimCycles  = 4   // per reclaimed young object
	checkCyclesStd = 5   // software barrier check (Hosking & Moss: 5 instructions)
	objsPerPage    = 128 // 32-byte cons cells per 4 KB page
)

// Stats tallies one run.
type Stats struct {
	Collections     int
	FullCollections int
	Allocated       int
	Promoted        int
	Reclaimed       int
	OldReclaimed    int    // old-generation objects freed by full collections
	Faults          int    // protection faults taken (page barriers)
	Checks          uint64 // software checks executed
	OldPages        int
	BarrierCyc      float64
}

// Object is a heap cell: a datum and up to two references (a cons).
type Object struct {
	data   uint32
	refs   [2]*Object
	gen    uint8 // 0 young, 1 old
	page   int32 // old-generation page index
	marked bool
}

// Data returns the object's payload.
func (o *Object) Data() uint32 { return o.data }

// Ref returns reference slot i.
func (o *Object) Ref(i int) *Object { return o.refs[i] }

// Heap is the collected heap.
type Heap struct {
	barrier Barrier
	costs   simos.CostTable
	clock   simos.Clock
	checkCy float64

	nursery     []*Object
	nurseryCap  int
	oldByPage   map[int32][]*Object
	oldPageUsed int // objects on the current old page
	oldPages    int

	protected map[int32]bool // old page is write-protected
	dirty     map[int32]bool // old page stored-into since last collection

	roots []*Object

	stats Stats
}

// New creates a heap with the given barrier and measured cost table.
// nurseryCap is the young-generation size in objects.
func New(b Barrier, costs simos.CostTable, nurseryCap int) *Heap {
	return &Heap{
		barrier:    b,
		costs:      costs,
		checkCy:    checkCyclesStd,
		nurseryCap: nurseryCap,
		oldByPage:  make(map[int32][]*Object),
		protected:  make(map[int32]bool),
		dirty:      make(map[int32]bool),
	}
}

// Stats returns run statistics.
func (h *Heap) Stats() Stats {
	s := h.stats
	s.OldPages = h.oldPages
	return s
}

// Clock returns the virtual clock.
func (h *Heap) Clock() *simos.Clock { return &h.clock }

// AddRoot registers a root slot.
func (h *Heap) AddRoot(o *Object) int {
	h.roots = append(h.roots, o)
	return len(h.roots) - 1
}

// SetRoot replaces a root.
func (h *Heap) SetRoot(i int, o *Object) { h.roots[i] = o }

// Root returns root i.
func (h *Heap) Root(i int) *Object { return h.roots[i] }

// Work charges mutator computation.
func (h *Heap) Work(ops int) { h.clock.Charge(float64(ops) * computeCycles) }

// Alloc allocates a young object, collecting first if the nursery is
// full.
func (h *Heap) Alloc(data uint32, left, right *Object) *Object {
	if len(h.nursery) >= h.nurseryCap {
		h.Collect()
	}
	h.clock.Charge(allocCycles)
	h.stats.Allocated++
	o := &Object{data: data, refs: [2]*Object{left, right}}
	h.nursery = append(h.nursery, o)
	return o
}

// WriteRef performs a pointer store src.refs[slot] = dst through the
// configured write barrier.
func (h *Heap) WriteRef(src *Object, slot int, dst *Object) {
	h.clock.Charge(storeCycles)
	switch h.barrier {
	case BarrierSoftware:
		// Inline check before every pointer store.
		h.clock.Charge(h.checkCy)
		h.stats.Checks++
		if src.gen == 1 {
			h.dirty[src.page] = true
		}
	case BarrierSigsegv, BarrierFastEager:
		if src.gen == 1 && h.protected[src.page] {
			// The store traps; the handler records the page in the
			// dirty set and unprotects it (eagerly amplified under
			// BarrierFastEager; by in-handler mprotect under
			// BarrierSigsegv — both are inside the measured
			// ProtFaultRT for their mode).
			h.stats.Faults++
			h.clock.Charge(h.costs.ProtFaultRT)
			h.stats.BarrierCyc += h.costs.ProtFaultRT
			h.dirty[src.page] = true
			h.protected[src.page] = false
		}
	}
	src.refs[slot] = dst
}

// ReadRef performs a pointer load (no barrier; charged as compute).
func (h *Heap) ReadRef(src *Object, slot int) *Object {
	h.clock.Charge(storeCycles)
	return src.refs[slot]
}

// Collect runs a young-generation collection: trace from roots and
// from dirty old pages, promote survivors, reclaim the rest, then
// re-protect the old generation pages that were opened.
func (h *Heap) Collect() {
	h.stats.Collections++

	// Mark phase: roots first.
	var mark func(o *Object)
	marked := make([]*Object, 0, len(h.nursery))
	mark = func(o *Object) {
		if o == nil || o.marked || o.gen != 0 {
			return
		}
		o.marked = true
		h.clock.Charge(traceObjCycles)
		marked = append(marked, o)
		mark(o.refs[0])
		mark(o.refs[1])
	}
	for _, r := range h.roots {
		if r != nil && r.gen == 0 {
			mark(r)
		} else if r != nil {
			// Old roots: their young referents are found via the
			// dirty-set scan below, but the root object itself is
			// always scanned (registered roots are few).
			mark(r.refs[0])
			mark(r.refs[1])
		}
	}
	// Remembered set: scan dirty old pages for old→young pointers.
	for page := range h.dirty {
		h.clock.Charge(scanPageCycles)
		for _, o := range h.oldByPage[page] {
			mark(o.refs[0])
			mark(o.refs[1])
		}
	}

	// Promote survivors to the old generation.
	for _, o := range marked {
		h.clock.Charge(promoteCycles)
		o.gen = 1
		if h.oldPageUsed == 0 || h.oldPageUsed >= objsPerPage {
			h.oldPages++
			h.oldPageUsed = 0
		}
		o.page = int32(h.oldPages - 1)
		h.oldPageUsed++
		o.marked = false
		h.oldByPage[o.page] = append(h.oldByPage[o.page], o)
		h.stats.Promoted++
	}
	h.stats.Reclaimed += len(h.nursery) - len(marked)
	h.clock.Charge(float64(len(h.nursery)-len(marked)) * reclaimCycles)
	h.nursery = h.nursery[:0]

	// Re-protect the old generation under page barriers: one batched
	// mprotect covering the opened (dirty) and newly created pages.
	if h.barrier != BarrierSoftware {
		pages := len(h.dirty)
		for p := int32(0); p < int32(h.oldPages); p++ {
			if !h.protected[p] {
				h.protected[p] = true
			}
		}
		if pages > 0 || h.oldPages > 0 {
			h.clock.Charge(h.costs.MprotectPage + float64(pages)*h.costs.MprotectExtraPage)
		}
	}
	for page := range h.dirty {
		delete(h.dirty, page)
	}
}

// CollectFull runs a major collection: the whole heap (both
// generations) is traced from the roots, unreachable old objects are
// reclaimed, and survivors are compacted onto fresh old pages. The
// entire old generation is re-protected afterwards under page barriers
// (the Xerox collector's occasional full collection).
func (h *Heap) CollectFull() {
	// A full collection subsumes a young collection: run it first so
	// the nursery is empty and all survivors live in the old
	// generation.
	h.Collect()
	h.stats.FullCollections++

	// Mark reachable old objects.
	marked := make(map[*Object]bool)
	var mark func(o *Object)
	mark = func(o *Object) {
		if o == nil || marked[o] {
			return
		}
		marked[o] = true
		h.clock.Charge(traceObjCycles)
		mark(o.refs[0])
		mark(o.refs[1])
	}
	for _, r := range h.roots {
		mark(r)
	}

	// Sweep and compact: survivors move to a fresh page sequence.
	// Iterate pages in index order — map order would make page
	// assignment (and thus barrier fault counts) nondeterministic.
	oldByPage := h.oldByPage
	prevPages := int32(h.oldPages)
	h.oldByPage = make(map[int32][]*Object)
	h.oldPages, h.oldPageUsed = 0, 0
	live := 0
	for page := int32(0); page < prevPages; page++ {
		for _, o := range oldByPage[page] {
			if !marked[o] {
				h.stats.OldReclaimed++
				h.clock.Charge(reclaimCycles)
				continue
			}
			h.clock.Charge(promoteCycles) // compaction copy
			if h.oldPageUsed == 0 || h.oldPageUsed >= objsPerPage {
				h.oldPages++
				h.oldPageUsed = 0
			}
			o.page = int32(h.oldPages - 1)
			h.oldPageUsed++
			h.oldByPage[o.page] = append(h.oldByPage[o.page], o)
			live++
		}
	}

	// Reset protection state for the compacted generation.
	if h.barrier != BarrierSoftware {
		h.protected = make(map[int32]bool)
		for p := int32(0); p < int32(h.oldPages); p++ {
			h.protected[p] = true
		}
		h.clock.Charge(h.costs.MprotectPage + float64(h.oldPages)*h.costs.MprotectExtraPage)
	} else {
		h.protected = make(map[int32]bool)
	}
	h.dirty = make(map[int32]bool)
}

// OldLive returns the number of live old-generation objects (post
// compaction bookkeeping; O(pages)).
func (h *Heap) OldLive() int {
	n := 0
	for _, objs := range h.oldByPage {
		n += len(objs)
	}
	return n
}

// Checksum folds the reachable heap into a value; used to prove that
// barrier mechanisms do not change collector results.
func (h *Heap) Checksum() uint32 {
	seen := make(map[*Object]bool)
	var sum uint32
	var walk func(o *Object, depth uint32)
	walk = func(o *Object, depth uint32) {
		if o == nil || seen[o] {
			return
		}
		seen[o] = true
		sum = sum*1000003 + o.data + depth
		walk(o.refs[0], depth+1)
		walk(o.refs[1], depth+1)
	}
	for _, r := range h.roots {
		walk(r, 1)
	}
	return sum
}

// --- Workloads -------------------------------------------------------

// Result summarizes a workload run.
type Result struct {
	Barrier  Barrier
	Seconds  float64
	Stats    Stats
	Checksum uint32
}

// LispOps is the paper's first benchmark: simulated Lisp operators
// (cons/car/cdr) repeatedly building large list structures without
// explicit deallocation, running the collector ~80 times and taking a
// few thousand protection faults (§4.1).
func LispOps(b Barrier, costs simos.CostTable) Result {
	h := New(b, costs, 8200)
	rng := rand.New(rand.NewSource(42))

	// Long-lived skeleton: a vector of list heads that survive
	// collections (they promote to the old generation, spanning ~32
	// pages), into which the mutator keeps splicing fresh young lists
	// (old→young stores).
	const skeletonSize = 4000
	skeleton := make([]*Object, skeletonSize)
	for i := range skeleton {
		skeleton[i] = h.Alloc(uint32(i), nil, nil)
		h.AddRoot(skeleton[i])
	}
	h.Collect() // promote the skeleton

	const iters = 120_000
	for i := 0; i < iters; i++ {
		// cons up a small fresh list (young garbage mostly).
		n := 3 + rng.Intn(6)
		var list *Object
		for j := 0; j < n; j++ {
			list = h.Alloc(uint32(i+j), list, nil)
			h.Work(6)
		}
		// Splice into the long-lived skeleton: an old→young store that
		// exercises the barrier.
		slot := rng.Intn(skeletonSize)
		h.WriteRef(skeleton[slot], 1, list)
		// car/cdr walking and arithmetic on the fresh list.
		for p, steps := list, 0; p != nil && steps < n; steps++ {
			p = h.ReadRef(p, 0)
			h.Work(5)
		}
		h.Work(120) // the rest of the Lisp operator mix per iteration
		if (i+1)%30_000 == 0 {
			h.CollectFull() // occasional major collection, as in Xerox's
		}
	}
	return Result{Barrier: b, Seconds: h.Clock().Seconds(), Stats: h.Stats(), Checksum: h.Checksum()}
}

// ArrayTest is the paper's second benchmark: a large (1 MB) array whose
// elements are randomly replaced with fresh objects; each replacement
// creates garbage and many replacements store old→young pointers,
// giving a much higher fault density relative to run time (§4.1).
func ArrayTest(b Barrier, costs simos.CostTable) Result {
	h := New(b, costs, 4000)
	rng := rand.New(rand.NewSource(43))

	// The 1 MB array: 8192 slot-objects spanning 64 pages of 32-byte
	// cells, long-lived.
	const slots = 8192
	array := make([]*Object, slots)
	for i := range array {
		array[i] = h.Alloc(uint32(i), nil, nil)
		h.AddRoot(array[i])
	}
	h.Collect() // promote the array

	const replacements = 120_000
	for i := 0; i < replacements; i++ {
		idx := rng.Intn(slots)
		fresh := h.Alloc(uint32(i), nil, nil)
		h.WriteRef(array[idx], 0, fresh) // old→young: barrier
		h.Work(7)
	}
	return Result{Barrier: b, Seconds: h.Clock().Seconds(), Stats: h.Stats(), Checksum: h.Checksum()}
}

// TreeWorkload and InteractiveWorkload are the Hosking & Moss-style
// applications of Table 5: they report the software-check count c and
// the trap count t for the break-even computation y = c·x/(f·t).
//
// Tree builds and destroys binary trees with occasional long-lived
// splices (few traps per many stores); Interactive mixes operations
// with a higher proportion of distinct old pages touched per
// collection cycle (more traps per store).
func TreeWorkload(b Barrier, costs simos.CostTable) Result {
	h := New(b, costs, 6000)
	rng := rand.New(rand.NewSource(44))

	// A forest of long-lived tree nodes (~50 old pages) subjected to
	// destructive updates: fresh subtrees are built (many young→young
	// checked stores) and spliced into random old nodes (occasional
	// trapping stores).
	const poolSize = 6400
	pool := make([]*Object, poolSize)
	for i := range pool {
		pool[i] = h.Alloc(uint32(i), nil, nil)
		h.AddRoot(pool[i])
	}
	h.Collect()

	var build func(depth int) *Object
	build = func(depth int) *Object {
		if depth == 0 {
			return h.Alloc(1, nil, nil)
		}
		l := build(depth - 1)
		r := build(depth - 1)
		n := h.Alloc(uint32(depth), nil, nil)
		h.WriteRef(n, 0, l)
		h.WriteRef(n, 1, r)
		return n
	}
	for i := 0; i < 5000; i++ {
		t := build(5) // 31 nodes, 62 checked stores
		h.WriteRef(pool[rng.Intn(poolSize)], rng.Intn(2), t)
		h.Work(40)
	}
	return Result{Barrier: b, Seconds: h.Clock().Seconds(), Stats: h.Stats(), Checksum: h.Checksum()}
}

// InteractiveWorkload models the Smalltalk macro-benchmark mix: widely
// scattered updates to long-lived state, so page protection traps are
// comparatively frequent per store.
func InteractiveWorkload(b Barrier, costs simos.CostTable) Result {
	h := New(b, costs, 2500)
	rng := rand.New(rand.NewSource(45))

	const state = 3000
	objs := make([]*Object, state)
	for i := range objs {
		objs[i] = h.Alloc(uint32(i), nil, nil)
		h.AddRoot(objs[i])
	}
	h.Collect()

	for i := 0; i < 30_000; i++ {
		idx := rng.Intn(state)
		fresh := h.Alloc(uint32(i), nil, nil)
		h.WriteRef(objs[idx], rng.Intn(2), fresh)
		h.Work(6)
	}
	return Result{Barrier: b, Seconds: h.Clock().Seconds(), Stats: h.Stats(), Checksum: h.Checksum()}
}
