package dsm

import (
	"testing"
	"testing/quick"

	"uexc/internal/core"
	"uexc/internal/simos"
)

func testConfig(t *testing.T, mode core.Mode) Config {
	t.Helper()
	ct, err := simos.Measure(mode)
	if err != nil {
		t.Fatal(err)
	}
	return DefaultNetwork(ct)
}

func TestBasicProtocol(t *testing.T) {
	s := New(3, 4, Config{})
	// Node 1 reads page 0: read fault, copy fetched.
	if v := s.Read(1, 0); v != 0 {
		t.Errorf("initial read = %d", v)
	}
	if s.Stats().ReadFaults != 1 {
		t.Errorf("read faults = %d", s.Stats().ReadFaults)
	}
	// Second read: no fault.
	s.Read(1, 0)
	if s.Stats().ReadFaults != 1 {
		t.Errorf("read faults after cached read = %d", s.Stats().ReadFaults)
	}
	// Node 2 writes page 0: write fault, invalidations of 0 and 1.
	s.Write(2, 0, 42)
	if s.Stats().WriteFaults != 1 {
		t.Errorf("write faults = %d", s.Stats().WriteFaults)
	}
	if s.Stats().Invalidates != 2 {
		t.Errorf("invalidates = %d, want 2", s.Stats().Invalidates)
	}
	// Node 1 must re-fault to read the new value.
	if v := s.Read(1, 0); v != 42 {
		t.Errorf("read after remote write = %d, want 42", v)
	}
	if s.Stats().ReadFaults != 2 {
		t.Errorf("read faults = %d, want 2", s.Stats().ReadFaults)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReadsOwnPageFree(t *testing.T) {
	s := New(2, 1, Config{})
	s.Write(0, 0, 7) // node 0 already owns it writable
	if s.Stats().WriteFaults != 0 {
		t.Errorf("write faults = %d, want 0", s.Stats().WriteFaults)
	}
	if v := s.Read(0, 0); v != 7 {
		t.Errorf("own read = %d", v)
	}
	if s.Stats().ReadFaults != 0 {
		t.Errorf("read faults = %d, want 0", s.Stats().ReadFaults)
	}
}

func TestCoherenceInvariantUnderRandomWorkloads(t *testing.T) {
	f := func(seed int64, nodesRaw, pagesRaw uint8) bool {
		nodes := int(nodesRaw%6) + 2
		pages := int(pagesRaw%12) + 1
		s := New(nodes, pages, Config{})
		Workload(s, 2000, seed)
		return s.CheckCoherence() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestResultsIndependentOfCostModel(t *testing.T) {
	// The mechanism changes cost, never values: identical checksums and
	// fault counts under Ultrix and fast exception costs.
	a := Workload(New(4, 16, testConfig(t, core.ModeUltrix)), 20_000, 99)
	b := Workload(New(4, 16, testConfig(t, core.ModeFast)), 20_000, 99)
	if a.Checksum != b.Checksum {
		t.Errorf("checksums differ: %#x vs %#x", a.Checksum, b.Checksum)
	}
	if a.Stats.ReadFaults != b.Stats.ReadFaults || a.Stats.WriteFaults != b.Stats.WriteFaults {
		t.Errorf("fault counts differ: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestFastExceptionsShrinkOSOverhead(t *testing.T) {
	ult := Workload(New(4, 16, testConfig(t, core.ModeUltrix)), 20_000, 99)
	fast := Workload(New(4, 16, testConfig(t, core.ModeFast)), 20_000, 99)

	if fast.Stats.TotalSeconds >= ult.Stats.TotalSeconds {
		t.Errorf("fast DSM (%.3fs) not below ultrix (%.3fs)",
			fast.Stats.TotalSeconds, ult.Stats.TotalSeconds)
	}
	if fast.FaultShare >= ult.FaultShare {
		t.Errorf("fault share did not shrink: %.3f vs %.3f", fast.FaultShare, ult.FaultShare)
	}
	t.Logf("dsm (4 nodes, 20k ops): ultrix %.3fs (%.1f%% in exception delivery) "+
		"vs fast %.3fs (%.1f%%); faults=%d",
		ult.Stats.TotalSeconds, 100*ult.FaultShare,
		fast.Stats.TotalSeconds, 100*fast.FaultShare,
		ult.Stats.ReadFaults+ult.Stats.WriteFaults)
	// On a 10 Mb/s network the page transfer dominates (Li & Hudak's
	// regime): the exception path is a minority share either way, but
	// the Ultrix share should be noticeably larger.
	if ult.FaultShare < 1.5*fast.FaultShare {
		t.Errorf("ultrix fault share %.3f not well above fast %.3f", ult.FaultShare, fast.FaultShare)
	}
}
