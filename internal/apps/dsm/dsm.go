// Package dsm implements page-based distributed shared virtual memory
// in the style of Li & Hudak's IVY — one of the exception-driven
// systems the paper's introduction cites as motivation. Nodes share a
// paged address space under a single-writer/multiple-reader protocol;
// all coherence actions are driven by memory-protection faults:
//
//   - a read of an invalid page faults; the handler fetches a copy from
//     the current owner and maps it read-only;
//   - a write to a read-only or invalid page faults; the handler
//     acquires ownership, invalidates other copies, and maps the page
//     writable.
//
// Every fault pays the configured exception-delivery cost (measured on
// the simulator via simos) plus modeled network and copy costs, so the
// study isolates exactly what the paper argues: how much of DSM's
// software overhead is the operating system's exception path.
//
// The protocol is real: page tables, copysets, owners, and data
// contents are maintained per node, and the final memory image is
// checked for coherence independent of the cost configuration.
package dsm

import (
	"fmt"
	"math/rand"

	"uexc/internal/simos"
)

// Access rights a node holds on a page.
type access uint8

const (
	accNone access = iota
	accRead
	accWrite
)

// Config sets the cost model.
type Config struct {
	Costs simos.CostTable

	// NetworkMicros is the one-way message latency between nodes;
	// PageCopyMicros the cost of moving one 4 KB page.
	NetworkMicros  float64
	PageCopyMicros float64
}

// DefaultNetwork returns 1994-era 10 Mb/s Ethernet-ish costs.
func DefaultNetwork(costs simos.CostTable) Config {
	return Config{
		Costs:          costs,
		NetworkMicros:  400,  // request/response latency per message
		PageCopyMicros: 3300, // 4 KB at ~10 Mb/s
	}
}

// Stats tallies one run.
type Stats struct {
	ReadFaults   uint64
	WriteFaults  uint64
	Invalidates  uint64
	PageMoves    uint64
	FaultCycles  float64 // cycles spent in exception delivery alone
	TotalSeconds float64
}

// System is a DSM instance.
type System struct {
	cfg   Config
	clock simos.Clock

	nodes int
	pages int

	owner   []int      // per page: current owner node
	copyset [][]bool   // per page: which nodes hold a read copy
	rights  [][]access // [node][page]
	data    [][]uint32 // per page: one word per page models contents
	version []uint32   // per page: write counter (coherence check)

	stats Stats
}

// New creates a DSM system of nodes sharing pages, all initially owned
// by node 0 with zeroed contents.
func New(nodes, pages int, cfg Config) *System {
	s := &System{cfg: cfg, nodes: nodes, pages: pages}
	s.owner = make([]int, pages)
	s.copyset = make([][]bool, pages)
	s.version = make([]uint32, pages)
	s.data = make([][]uint32, pages)
	for p := range s.copyset {
		s.copyset[p] = make([]bool, nodes)
		s.copyset[p][0] = true
		s.data[p] = []uint32{0}
	}
	s.rights = make([][]access, nodes)
	for n := range s.rights {
		s.rights[n] = make([]access, pages)
	}
	for p := range s.owner {
		s.rights[0][p] = accWrite
	}
	return s
}

// Stats returns statistics; TotalSeconds is filled from the clock.
func (s *System) Stats() Stats {
	st := s.stats
	st.TotalSeconds = s.clock.Seconds()
	return st
}

func (s *System) chargeMicros(us float64) { s.clock.Charge(us * 25) }

// chargeFault charges one protection-fault delivery at the configured
// exception mechanism's measured cost.
func (s *System) chargeFault() {
	s.clock.Charge(s.cfg.Costs.ProtFaultRT)
	s.stats.FaultCycles += s.cfg.Costs.ProtFaultRT
}

// Read performs a shared-memory read of page p on node n.
func (s *System) Read(n, p int) uint32 {
	s.clock.Charge(2)
	if s.rights[n][p] == accNone {
		// Read fault: fetch a copy from the owner.
		s.stats.ReadFaults++
		s.chargeFault()
		s.chargeMicros(2 * s.cfg.NetworkMicros) // request + reply
		s.chargeMicros(s.cfg.PageCopyMicros)
		s.stats.PageMoves++
		s.copyset[p][n] = true
		s.rights[n][p] = accRead
		// The owner drops to read-only (single-writer protocol).
		if o := s.owner[p]; s.rights[o][p] == accWrite {
			s.rights[o][p] = accRead
		}
	}
	return s.data[p][0]
}

// Write performs a shared-memory write of page p on node n.
func (s *System) Write(n, p int, v uint32) {
	s.clock.Charge(2)
	if s.rights[n][p] != accWrite {
		// Write fault: acquire ownership, invalidate other copies.
		s.stats.WriteFaults++
		s.chargeFault()
		s.chargeMicros(2 * s.cfg.NetworkMicros)
		if s.owner[p] != n {
			s.chargeMicros(s.cfg.PageCopyMicros)
			s.stats.PageMoves++
		}
		for other := 0; other < s.nodes; other++ {
			if other != n && s.copyset[p][other] {
				s.copyset[p][other] = false
				s.rights[other][p] = accNone
				s.chargeMicros(s.cfg.NetworkMicros) // invalidation
				s.stats.Invalidates++
			}
		}
		s.owner[p] = n
		s.copyset[p] = make([]bool, s.nodes)
		s.copyset[p][n] = true
		s.rights[n][p] = accWrite
	}
	s.data[p][0] = v
	s.version[p]++
}

// CheckCoherence verifies protocol invariants: one writer xor readers,
// owner holds a copy, rights match copysets.
func (s *System) CheckCoherence() error {
	for p := 0; p < s.pages; p++ {
		writers, readers := 0, 0
		for n := 0; n < s.nodes; n++ {
			switch s.rights[n][p] {
			case accWrite:
				writers++
			case accRead:
				readers++
			}
			if s.rights[n][p] != accNone && !s.copyset[p][n] {
				return fmt.Errorf("dsm: node %d has rights on page %d without a copy", n, p)
			}
		}
		if writers > 1 {
			return fmt.Errorf("dsm: page %d has %d writers", p, writers)
		}
		if writers == 1 && readers > 0 {
			return fmt.Errorf("dsm: page %d has a writer and %d readers", p, readers)
		}
		if !s.copyset[p][s.owner[p]] {
			return fmt.Errorf("dsm: owner %d of page %d lacks a copy", s.owner[p], p)
		}
	}
	return nil
}

// Result summarizes a workload run.
type Result struct {
	Stats    Stats
	Checksum uint32
	// FaultShare is the fraction of total time spent in exception
	// delivery (the OS component the paper's mechanism shrinks).
	FaultShare float64
}

// Workload runs a sharing pattern: each of ops operations picks a node
// and page; reads outnumber writes 3:1, with pageLocality controlling
// how often a node revisits its last page. Deterministic per seed.
func Workload(s *System, ops int, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	last := make([]int, s.nodes)
	var checksum uint32
	for i := 0; i < ops; i++ {
		n := rng.Intn(s.nodes)
		p := last[n]
		if rng.Intn(100) < 35 { // 65% locality
			p = rng.Intn(s.pages)
			last[n] = p
		}
		if rng.Intn(4) == 0 {
			s.Write(n, p, uint32(i))
			checksum = checksum*31 + uint32(i)
		} else {
			checksum = checksum*31 + s.Read(n, p)
		}
	}
	st := s.Stats()
	total := s.clock.Cycles
	share := 0.0
	if total > 0 {
		share = st.FaultCycles / total
	}
	return Result{Stats: st, Checksum: checksum, FaultShare: share}
}
