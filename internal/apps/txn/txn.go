// Package txn implements page-protection-based transaction support in
// the style Chang & Mergen described for the IBM 801's database storage
// — another exception-driven system the paper's introduction cites.
//
// A transaction write-protects its region at begin; the *first* store
// to each page faults, and the handler snapshots the page into an undo
// log before opening it for writing (copy-on-first-write logging).
// Commit discards the log and re-protects; abort restores every logged
// page. Only touched pages pay anything — the protection hardware finds
// the write set for free, which is the whole point of using exceptions.
//
// Data semantics are real (pages of words, snapshots, restores) and are
// verified independent of the exception cost model; the cost model
// charges the measured per-fault delivery cost of the configured
// mechanism plus copy and protection costs.
package txn

import (
	"fmt"

	"uexc/internal/simos"
)

// PageWords is the page size in 32-bit words (4 KB).
const PageWords = 1024

// Config sets the cost model.
type Config struct {
	Costs simos.CostTable

	// PageCopyCycles is the cost of snapshotting one page into the
	// undo log (4 KB at ~2 cycles/word on the era's hardware).
	PageCopyCycles float64
}

// DefaultConfig fills the copy cost.
func DefaultConfig(costs simos.CostTable) Config {
	return Config{Costs: costs, PageCopyCycles: 2048}
}

// Stats tallies activity.
type Stats struct {
	Begins      uint64
	Commits     uint64
	Aborts      uint64
	WriteFaults uint64 // first-touch faults (pages logged)
	PagesLogged uint64
}

// Region is a transactional memory region.
type Region struct {
	cfg   Config
	clock simos.Clock

	pages    [][]uint32
	writable []bool
	inTxn    bool
	undo     map[int][]uint32 // page index -> snapshot

	stats Stats
}

// New creates a region of n pages, all zero, outside any transaction
// (writable).
func New(n int, cfg Config) *Region {
	r := &Region{cfg: cfg, undo: make(map[int][]uint32)}
	r.pages = make([][]uint32, n)
	r.writable = make([]bool, n)
	for i := range r.pages {
		r.pages[i] = make([]uint32, PageWords)
		r.writable[i] = true
	}
	return r
}

// Stats returns statistics.
func (r *Region) Stats() Stats { return r.stats }

// Clock returns the virtual clock.
func (r *Region) Clock() *simos.Clock { return &r.clock }

// Begin starts a transaction: the whole region is write-protected in
// one batched protection call.
func (r *Region) Begin() error {
	if r.inTxn {
		return fmt.Errorf("txn: nested transactions unsupported")
	}
	r.inTxn = true
	r.stats.Begins++
	for i := range r.writable {
		r.writable[i] = false
	}
	r.clock.Charge(r.cfg.Costs.MprotectPage +
		float64(len(r.pages)-1)*r.cfg.Costs.MprotectExtraPage)
	return nil
}

// Read loads a word (never faults; reads stay enabled).
func (r *Region) Read(page, word int) uint32 {
	r.clock.Charge(2)
	return r.pages[page][word]
}

// Write stores a word; inside a transaction the first store to a page
// faults and the handler logs the page before opening it.
func (r *Region) Write(page, word int, v uint32) {
	r.clock.Charge(2)
	if r.inTxn && !r.writable[page] {
		// Protection fault: deliver to the user-level transaction
		// handler, snapshot the page, amplify, retry.
		r.stats.WriteFaults++
		r.clock.Charge(r.cfg.Costs.ProtFaultRT + r.cfg.PageCopyCycles)
		snap := make([]uint32, PageWords)
		copy(snap, r.pages[page])
		r.undo[page] = snap
		r.stats.PagesLogged++
		r.writable[page] = true
	}
	r.pages[page][word] = v
}

// Commit makes the transaction's writes permanent.
func (r *Region) Commit() error {
	if !r.inTxn {
		return fmt.Errorf("txn: commit outside transaction")
	}
	r.inTxn = false
	r.stats.Commits++
	// Discard the log; reopen the region.
	for p := range r.undo {
		delete(r.undo, p)
	}
	for i := range r.writable {
		r.writable[i] = true
	}
	r.clock.Charge(r.cfg.Costs.MprotectPage +
		float64(len(r.pages)-1)*r.cfg.Costs.MprotectExtraPage)
	return nil
}

// Abort rolls every logged page back to its pre-transaction contents.
func (r *Region) Abort() error {
	if !r.inTxn {
		return fmt.Errorf("txn: abort outside transaction")
	}
	r.inTxn = false
	r.stats.Aborts++
	for p, snap := range r.undo {
		copy(r.pages[p], snap)
		r.clock.Charge(r.cfg.PageCopyCycles)
		delete(r.undo, p)
	}
	for i := range r.writable {
		r.writable[i] = true
	}
	r.clock.Charge(r.cfg.Costs.MprotectPage +
		float64(len(r.pages)-1)*r.cfg.Costs.MprotectExtraPage)
	return nil
}

// Checksum folds the region contents for verification.
func (r *Region) Checksum() uint32 {
	var sum uint32
	for _, pg := range r.pages {
		for _, w := range pg {
			sum = sum*16777619 ^ w
		}
	}
	return sum
}
