package txn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"uexc/internal/core"
	"uexc/internal/simos"
)

func cfg(t *testing.T, mode core.Mode) Config {
	t.Helper()
	ct, err := simos.Measure(mode)
	if err != nil {
		t.Fatal(err)
	}
	return DefaultConfig(ct)
}

func TestCommitPersists(t *testing.T) {
	r := New(4, Config{})
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	r.Write(1, 10, 0xaa)
	r.Write(1, 11, 0xbb)
	r.Write(3, 0, 0xcc)
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	if r.Read(1, 10) != 0xaa || r.Read(1, 11) != 0xbb || r.Read(3, 0) != 0xcc {
		t.Error("committed writes lost")
	}
	// Two distinct pages were touched: exactly two faults.
	if r.Stats().WriteFaults != 2 || r.Stats().PagesLogged != 2 {
		t.Errorf("faults=%d logged=%d, want 2/2", r.Stats().WriteFaults, r.Stats().PagesLogged)
	}
}

func TestAbortRestoresExactly(t *testing.T) {
	r := New(4, Config{})
	r.Write(0, 5, 111)
	r.Write(2, 7, 222)
	before := r.Checksum()
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	r.Write(0, 5, 999)
	r.Write(2, 7, 888)
	r.Write(3, 1, 777)
	if err := r.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := r.Checksum(); got != before {
		t.Errorf("abort did not restore: %#x vs %#x", got, before)
	}
	if r.Read(0, 5) != 111 || r.Read(2, 7) != 222 || r.Read(3, 1) != 0 {
		t.Error("restored values wrong")
	}
}

func TestOnlyTouchedPagesPay(t *testing.T) {
	r := New(64, Config{})
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r.Write(5, i, uint32(i)) // one page, many writes
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	if r.Stats().WriteFaults != 1 {
		t.Errorf("faults = %d, want 1 (copy-on-first-write)", r.Stats().WriteFaults)
	}
}

func TestTxnStateErrors(t *testing.T) {
	r := New(1, Config{})
	if err := r.Commit(); err == nil {
		t.Error("commit outside txn succeeded")
	}
	if err := r.Abort(); err == nil {
		t.Error("abort outside txn succeeded")
	}
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := r.Begin(); err == nil {
		t.Error("nested begin succeeded")
	}
}

// TestRandomTransactionsEquivalentToReference: random commit/abort
// sequences against a plain-map reference model.
func TestRandomTransactionsEquivalentToReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const pages = 8
		r := New(pages, Config{})
		ref := make([]uint32, pages*PageWords)

		for txn := 0; txn < 20; txn++ {
			if err := r.Begin(); err != nil {
				return false
			}
			var writes []struct {
				p, w int
				v    uint32
			}
			for i := 0; i < rng.Intn(30); i++ {
				p, w, v := rng.Intn(pages), rng.Intn(PageWords), rng.Uint32()
				r.Write(p, w, v)
				writes = append(writes, struct {
					p, w int
					v    uint32
				}{p, w, v})
			}
			if rng.Intn(2) == 0 {
				if err := r.Commit(); err != nil {
					return false
				}
				for _, wr := range writes {
					ref[wr.p*PageWords+wr.w] = wr.v
				}
			} else {
				if err := r.Abort(); err != nil {
					return false
				}
			}
		}
		for p := 0; p < pages; p++ {
			for w := 0; w < PageWords; w++ {
				if r.Read(p, w) != ref[p*PageWords+w] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestFastExceptionsCutTransactionOverhead compares per-transaction
// cost under the two delivery mechanisms.
func TestFastExceptionsCutTransactionOverhead(t *testing.T) {
	run := func(c Config) (float64, uint32) {
		r := New(32, c)
		rng := rand.New(rand.NewSource(7))
		for txn := 0; txn < 200; txn++ {
			if err := r.Begin(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				r.Write(rng.Intn(32), rng.Intn(PageWords), rng.Uint32())
			}
			if err := r.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		return r.Clock().Seconds(), r.Checksum()
	}
	ultS, ultCS := run(cfg(t, core.ModeUltrix))
	fastS, fastCS := run(cfg(t, core.ModeFast))
	if ultCS != fastCS {
		t.Fatalf("contents diverged across cost models")
	}
	if fastS >= ultS {
		t.Errorf("fast (%.4fs) not below ultrix (%.4fs)", fastS, ultS)
	}
	imp := 100 * (ultS - fastS) / ultS
	t.Logf("200 transactions: ultrix %.1fms, fast %.1fms (%.0f%% less)",
		ultS*1000, fastS*1000, imp)
	if imp < 10 {
		t.Errorf("improvement = %.1f%%, want substantial (fault-dominated workload)", imp)
	}
}
