// Package fullempty implements the paper's §4.2.1 full/empty-bit
// synchronization on the real simulated machine: a memory cell is
// accessed through an indirection handle; while the cell is "empty" the
// handle is unaligned (odd), so a consumer's read faults. The fast
// user-level handler plays the producer: it fills the cell, marks the
// handle full (even), repairs the consumer's cursor, and resumes — the
// read then observes the produced value. Consuming re-empties the cell
// by making the handle odd again.
//
// On the Tera and APRIL this is a hardware tag bit on every word; the
// paper's point is that with fast user-level exceptions, conventional
// processors can express the same blocking semantics through unaligned
// indirection pointers, paying storage only for cells that need
// synchronization.
package fullempty

import (
	"fmt"

	"uexc/internal/core"
)

// Result reports one run.
type Result struct {
	Sum    uint32 // sum of all consumed values
	Faults uint64 // read-on-empty faults (one per consumption)
	Cycles uint64
}

// program: consume n values through a full/empty cell. Each consume
// empties the cell, so every read faults once; the handler produces the
// next value (multiples of 10). Cursor convention: t4.
func program(n int) string {
	return fmt.Sprintf(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, producer_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<4)|(1<<5)      # AdEL|AdES
	jal   __uexc_enable
	nop

	li    s0, %d
	li    s2, 0
consume_loop:
	la    t4, handle
	lw    t4, 0(t4)              # current handle (odd while empty)
	nop
	lw    t5, 0(t4)              # read: blocks (faults) on empty
	nop
	addu  s2, s2, t5
	# consume: mark the cell empty again (set the handle odd)
	la    t6, handle
	lw    t7, 0(t6)
	nop
	ori   t7, t7, 1
	sw    t7, 0(t6)
	addiu s0, s0, -1
	bnez  s0, consume_loop
	nop
	la    t6, result
	sw    s2, 0(t6)
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

# The producer, invoked by the read-on-empty fault: fill the cell with
# the next value, mark the handle full, repair the consumer's cursor.
producer_handler:
	lw    t6, 8(a0)              # FrBadVAddr = cell address | 1
	nop
	addiu t6, t6, -1             # cell
	la    t7, seq
	lw    t8, 0(t7)
	nop
	addiu t8, t8, 10
	sw    t8, 0(t7)              # seq += 10
	sw    t8, 0(t6)              # fill the cell
	la    t7, handle
	sw    t6, 0(t7)              # handle full (even)
	sw    t6, 0x3c(a0)           # repair saved cursor (frame t4)
	jr    ra
	nop

	.align 8
cell:
	.word 0
handle:
	.word cell + 1               # initially empty
seq:
	.word 0
result:
	.word 0
`, n)
}

// Run performs n produce/consume rounds; values are 10, 20, 30, ...
func Run(n int) (Result, error) {
	if n < 1 || n > 100_000 {
		return Result{}, fmt.Errorf("fullempty: n %d out of range", n)
	}
	m, err := core.NewMachine()
	if err != nil {
		return Result{}, err
	}
	if err := m.LoadProgram(program(n)); err != nil {
		return Result{}, err
	}
	if err := m.Run(200_000_000); err != nil {
		return Result{}, err
	}
	r := Result{Cycles: m.CPU().Cycles, Faults: m.CPU().ExcCounts[4]}
	var ok bool
	if r.Sum, ok = m.K.ReadUserWord(m.Sym("result")); !ok {
		return r, fmt.Errorf("fullempty: result unreadable")
	}
	return r, nil
}

// Expected returns the expected sum for n rounds: 10+20+...+10n.
func Expected(n int) uint32 { return uint32(10 * n * (n + 1) / 2) }
