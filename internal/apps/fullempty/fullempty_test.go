package fullempty

import "testing"

func TestProduceConsumeRounds(t *testing.T) {
	const n = 25
	r, err := Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sum != Expected(n) {
		t.Errorf("sum = %d, want %d", r.Sum, Expected(n))
	}
	// Every consumption empties the cell, so every read faults exactly
	// once: read-on-empty blocking semantics.
	if r.Faults != n {
		t.Errorf("faults = %d, want %d", r.Faults, n)
	}
}

func TestSingleRound(t *testing.T) {
	r, err := Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sum != 10 || r.Faults != 1 {
		t.Errorf("sum=%d faults=%d, want 10/1", r.Sum, r.Faults)
	}
}

func TestManyRounds(t *testing.T) {
	const n = 1000
	r, err := Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sum != Expected(n) {
		t.Errorf("sum = %d, want %d", r.Sum, Expected(n))
	}
	if r.Faults != n {
		t.Errorf("faults = %d, want %d", r.Faults, n)
	}
}

func TestBounds(t *testing.T) {
	if _, err := Run(0); err == nil {
		t.Error("Run(0) succeeded")
	}
}
