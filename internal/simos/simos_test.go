package simos

import (
	"testing"

	"uexc/internal/core"
)

func TestMeasureFastVsUltrix(t *testing.T) {
	fast, err := Measure(core.ModeFast)
	if err != nil {
		t.Fatal(err)
	}
	ult, err := Measure(core.ModeUltrix)
	if err != nil {
		t.Fatal(err)
	}
	// Paper anchors, with the per-mode semantics documented on
	// CostTable: fast prot fault (eager, incl. retry) ≈ 18 µs; Ultrix
	// prot fault incl. the handler's unprotecting mprotect ≈ 100 µs.
	if us := Micros(fast.ProtFaultRT); us < 10 || us > 25 {
		t.Errorf("fast prot fault = %.1fµs, want ~16-18", us)
	}
	if us := Micros(ult.ProtFaultRT); us < 70 || us > 140 {
		t.Errorf("ultrix prot fault = %.1fµs, want ~100", us)
	}
	if fast.ProtFaultRT >= ult.ProtFaultRT {
		t.Error("fast prot fault not cheaper than ultrix")
	}
	if us := Micros(fast.UnalignedFaultRT); us < 4 || us > 8 {
		t.Errorf("fast unaligned fault = %.1fµs, want ~6", us)
	}
	if fast.UnalignedFaultRT >= ult.UnalignedFaultRT {
		t.Error("fast unaligned fault not cheaper than ultrix")
	}
	if us := Micros(fast.NullSyscall); us < 9 || us > 15 {
		t.Errorf("null syscall = %.1fµs, want ~12", us)
	}
	if fast.MprotectPage <= fast.NullSyscall {
		t.Error("mprotect must cost more than a null syscall")
	}
}

func TestMeasureCaches(t *testing.T) {
	a, err := Measure(core.ModeFast)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(core.ModeFast)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated Measure returned different tables (cache broken)")
	}
}

func TestMeasureHardwareMode(t *testing.T) {
	hw, err := Measure(core.ModeHardware)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Measure(core.ModeFast)
	if err != nil {
		t.Fatal(err)
	}
	if hw.SimpleFaultRT >= fast.SimpleFaultRT {
		t.Errorf("hardware simple fault (%.0f) not below software (%.0f)",
			hw.SimpleFaultRT, fast.SimpleFaultRT)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Charge(25e6) // one simulated second
	if got := c.Seconds(); got != 1.0 {
		t.Errorf("Seconds() = %v, want 1", got)
	}
	c.Charge(25) // one more µs
	if got := c.MicrosTotal(); got != 1e6+1 {
		t.Errorf("MicrosTotal() = %v", got)
	}
}
