package simos

import (
	"sync"
	"testing"

	"uexc/internal/core"
)

func TestMeasureFastVsUltrix(t *testing.T) {
	fast, err := Measure(core.ModeFast)
	if err != nil {
		t.Fatal(err)
	}
	ult, err := Measure(core.ModeUltrix)
	if err != nil {
		t.Fatal(err)
	}
	// Paper anchors, with the per-mode semantics documented on
	// CostTable: fast prot fault (eager, incl. retry) ≈ 18 µs; Ultrix
	// prot fault incl. the handler's unprotecting mprotect ≈ 100 µs.
	if us := Micros(fast.ProtFaultRT); us < 10 || us > 25 {
		t.Errorf("fast prot fault = %.1fµs, want ~16-18", us)
	}
	if us := Micros(ult.ProtFaultRT); us < 70 || us > 140 {
		t.Errorf("ultrix prot fault = %.1fµs, want ~100", us)
	}
	if fast.ProtFaultRT >= ult.ProtFaultRT {
		t.Error("fast prot fault not cheaper than ultrix")
	}
	if us := Micros(fast.UnalignedFaultRT); us < 4 || us > 8 {
		t.Errorf("fast unaligned fault = %.1fµs, want ~6", us)
	}
	if fast.UnalignedFaultRT >= ult.UnalignedFaultRT {
		t.Error("fast unaligned fault not cheaper than ultrix")
	}
	if us := Micros(fast.NullSyscall); us < 9 || us > 15 {
		t.Errorf("null syscall = %.1fµs, want ~12", us)
	}
	if fast.MprotectPage <= fast.NullSyscall {
		t.Error("mprotect must cost more than a null syscall")
	}
}

func TestMeasureCaches(t *testing.T) {
	a, err := Measure(core.ModeFast)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(core.ModeFast)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated Measure returned different tables (cache broken)")
	}
}

func TestMeasureHardwareMode(t *testing.T) {
	hw, err := Measure(core.ModeHardware)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Measure(core.ModeFast)
	if err != nil {
		t.Fatal(err)
	}
	if hw.SimpleFaultRT >= fast.SimpleFaultRT {
		t.Errorf("hardware simple fault (%.0f) not below software (%.0f)",
			hw.SimpleFaultRT, fast.SimpleFaultRT)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Charge(25e6) // one simulated second
	if got := c.Seconds(); got != 1.0 {
		t.Errorf("Seconds() = %v, want 1", got)
	}
	c.Charge(25) // one more µs
	if got := c.MicrosTotal(); got != 1e6+1 {
		t.Errorf("MicrosTotal() = %v", got)
	}
}

// TestMeasureSingleFlight hammers an uncached mode from many
// goroutines: exactly one must run the underlying measurement, the
// rest must block on it and read identical bytes — the property the
// parallel campaign engine relies on for this process-global cache.
func TestMeasureSingleFlight(t *testing.T) {
	costMu.Lock()
	costCache = map[core.Mode]*costEntry{} // drop any tables cached by earlier tests
	measureRuns.Store(0)
	costMu.Unlock()

	const callers = 8
	var wg sync.WaitGroup
	tables := make([]CostTable, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tables[i], errs[i] = Measure(core.ModeFast)
		}(i)
	}
	wg.Wait()

	if got := measureRuns.Load(); got != 1 {
		t.Errorf("measure ran %d times for one mode, want 1 (single-flight broken)", got)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if tables[i] != tables[0] {
			t.Errorf("caller %d saw a different cost table", i)
		}
	}

	// Distinct modes are measured independently (one run each).
	if _, err := Measure(core.ModeUltrix); err != nil {
		t.Fatal(err)
	}
	if got := measureRuns.Load(); got != 2 {
		t.Errorf("measure ran %d times for two modes, want 2", got)
	}
}
