// Package simos bridges the instruction-level simulator and the
// application-level studies (generational GC, pointer swizzling).
//
// The paper's application benchmarks run millions of heap operations;
// simulating every instruction would be both slow and pointless, since
// the quantity of interest is (events × per-event cost). simos instead
// *measures* each per-event cost once, by running the real
// microbenchmarks on the instruction-level machine (internal/core), and
// exposes the resulting CostTable to the application simulations, which
// charge virtual cycles per event. Application results therefore
// inherit microbenchmark fidelity without executing 10⁹ simulated
// instructions (see DESIGN.md §5).
package simos

import (
	"fmt"
	"sync"
	"sync/atomic"

	"uexc/internal/core"
	"uexc/internal/cpu"
)

// CostTable holds measured per-event costs in cycles.
type CostTable struct {
	Mode core.Mode

	// ProtFaultRT is a write-protection fault's full cost: delivery to
	// the user handler, handler-to-resume return, and the retried
	// store. Under ModeFast this is measured with eager amplification
	// (the paper's 18 µs); under ModeUltrix the SIGSEGV handler's
	// unprotecting mprotect call is included (the handler cannot
	// resume without it).
	ProtFaultRT float64

	// ProtFaultDeliver is delivery-only (Table 2 row 2).
	ProtFaultDeliver float64

	// UnalignedFaultRT is the specialized-handler unaligned fault cost
	// (the §4.2.2 swizzling configuration; 6 µs fast).
	UnalignedFaultRT float64

	// SimpleFaultRT is a simple exception round trip (Table 2 row 5).
	SimpleFaultRT float64

	// MprotectPage is one mprotect syscall covering a single page;
	// MprotectExtraPage the marginal cost per additional page in the
	// same call.
	MprotectPage      float64
	MprotectExtraPage float64

	// NullSyscall is the getpid round trip.
	NullSyscall float64
}

// Micros converts cycles to µs.
func Micros(c float64) float64 { return c / cpu.ClockMHz }

// costEntry is a single-flight cache slot: the first caller for a mode
// runs measure inside the Once; concurrent callers for the same mode
// block on that Once instead of measuring again.
type costEntry struct {
	once sync.Once
	ct   CostTable
	err  error
}

var (
	costMu    sync.Mutex
	costCache = map[core.Mode]*costEntry{}

	// measureRuns counts actual measure executions; the single-flight
	// test asserts it stays at one per mode under concurrent callers.
	measureRuns atomic.Int64
)

// Measure returns the cost table for a delivery mode, measuring it on
// the instruction-level simulator on first use (then cached for the
// process lifetime; the machine is deterministic, so re-measurement is
// pure waste). Concurrent callers are single-flighted: with the
// parallel campaign and exhibit engine sharing this process-global
// cache, two workers requesting the same uncached mode must not both
// boot a measurement machine — the second blocks until the first's
// table is ready and then reads the identical bytes.
func Measure(mode core.Mode) (CostTable, error) {
	costMu.Lock()
	e := costCache[mode]
	if e == nil {
		e = new(costEntry)
		costCache[mode] = e
	}
	costMu.Unlock()
	e.once.Do(func() {
		measureRuns.Add(1)
		e.ct, e.err = measure(mode)
	})
	return e.ct, e.err
}

func measure(mode core.Mode) (CostTable, error) {
	const n = 30
	ct := CostTable{Mode: mode}

	simple, err := core.MeasureSimpleException(mode, n)
	if err != nil {
		return ct, fmt.Errorf("simos: simple exception: %w", err)
	}
	ct.SimpleFaultRT = simple.RoundTrip

	switch mode {
	case core.ModeFast:
		wp, err := core.MeasureWriteProt(core.ModeFast, true, n)
		if err != nil {
			return ct, fmt.Errorf("simos: write prot: %w", err)
		}
		ct.ProtFaultRT = wp.RoundTrip
		ct.ProtFaultDeliver = wp.Deliver
		un, err := core.MeasureUnalignedMin(n)
		if err != nil {
			return ct, fmt.Errorf("simos: unaligned: %w", err)
		}
		ct.UnalignedFaultRT = un.RoundTrip
	case core.ModeUltrix:
		wp, err := core.MeasureWriteProt(core.ModeUltrix, false, n)
		if err != nil {
			return ct, fmt.Errorf("simos: write prot: %w", err)
		}
		// The Ultrix RT includes the in-handler mprotect (the handler
		// must unprotect to make the retry succeed) — exactly what a
		// Boehm-style collector pays per barrier fault.
		ct.ProtFaultRT = wp.RoundTrip
		ct.ProtFaultDeliver = wp.Deliver
		// Ultrix has no specialized low-level handler; an unaligned
		// fault costs a full signal round trip.
		ct.UnalignedFaultRT = simple.RoundTrip
	case core.ModeHardware:
		// Hardware delivery: protection faults still need the kernel
		// for TLB state unless U-bit manipulation is used; model the
		// prot fault as fast-path (conservative) and unaligned as the
		// measured hardware round trip.
		wp, err := core.MeasureWriteProt(core.ModeFast, true, n)
		if err != nil {
			return ct, fmt.Errorf("simos: write prot: %w", err)
		}
		ct.ProtFaultRT = wp.RoundTrip
		ct.ProtFaultDeliver = wp.Deliver
		ct.UnalignedFaultRT = simple.RoundTrip
	}

	sys, err := core.MeasureNullSyscall(n)
	if err != nil {
		return ct, fmt.Errorf("simos: null syscall: %w", err)
	}
	ct.NullSyscall = sys
	// mprotect ≈ null syscall dispatch + one page of PTE/TLB work; the
	// marginal page cost comes from the kernel cost model (75 cycles,
	// see kernel.DefaultCosts), measured here via a 2-page vs 1-page
	// difference on a real program would be equivalent; we charge the
	// same constants the in-handler mprotect paid during ProtFaultRT.
	ct.MprotectPage = sys + 75
	ct.MprotectExtraPage = 75
	return ct, nil
}

// Clock is the virtual cycle accumulator application simulations charge
// into. Separate from any real CPU: the application layer runs
// host-side.
type Clock struct {
	Cycles float64
}

// Charge adds cycles.
func (c *Clock) Charge(cy float64) { c.Cycles += cy }

// Seconds converts the accumulated virtual time to seconds at the
// simulated 25 MHz clock.
func (c *Clock) Seconds() float64 { return c.Cycles / (cpu.ClockMHz * 1e6) }

// MicrosTotal converts to µs.
func (c *Clock) MicrosTotal() float64 { return c.Cycles / cpu.ClockMHz }
