package uexc

// Smoke tests for everything under examples/: each assembly program
// must assemble against the user runtime, run to a clean exit with its
// expected console output, and behave identically on a fresh and a
// recycled machine; each Go example must build and run to completion.

import (
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"uexc/internal/core"
)

func readFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	return string(data), err
}

// consoleWant pins a recognizable fragment of each example program's
// output; programs not listed only need a clean exit.
var consoleWant = map[string]string{
	"hello.s":    "hello, world!\n",
	"fib.s":      "144\n",
	"trapdemo.s": "handled 9 traps at user level\n",
}

func runExampleSource(t *testing.T, m *core.Machine, src string) string {
	t.Helper()
	if err := m.LoadProgram(src); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.K.Console()
}

// TestExamplePrograms: every .s file under examples/programs runs to a
// clean exit with its pinned console fragment, and the console is
// byte-identical when the machine is recycled through the pool — the
// same reset contract the sharded campaigns rely on.
func TestExamplePrograms(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("examples", "programs", "*.s"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no example programs found — glob rooted wrong?")
	}
	sort.Strings(files)
	pool := &core.MachinePool{}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := readFile(file)
			if err != nil {
				t.Fatal(err)
			}
			m1, err := pool.Get()
			if err != nil {
				t.Fatal(err)
			}
			first := runExampleSource(t, m1, data)
			pool.Put(m1)
			if want := consoleWant[filepath.Base(file)]; want != "" && !strings.Contains(first, want) {
				t.Errorf("console %q missing %q", first, want)
			}
			m2, err := pool.Get()
			if err != nil {
				t.Fatal(err)
			}
			second := runExampleSource(t, m2, data)
			pool.Put(m2)
			if first != second {
				t.Errorf("console differs between fresh and recycled machine:\n--- fresh ---\n%s--- recycled ---\n%s",
					first, second)
			}
		})
	}
}

// TestExampleGoMains: every Go example under examples/ runs to a zero
// exit. These boot full machines (some compare all three delivery
// modes), so they are skipped in -short mode.
func TestExampleGoMains(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every Go example end to end")
	}
	dirs, err := filepath.Glob(filepath.Join("examples", "*", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no Go examples found")
	}
	sort.Strings(dirs)
	for _, main := range dirs {
		dir := filepath.Dir(main)
		t.Run(filepath.Base(dir), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./"+dir).CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./%s: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Errorf("go run ./%s produced no output", dir)
			}
		})
	}
}
